"""Algorithm *GiveNTake* (paper Figure 15).

The equations partition into four sets evaluated in three sweeps::

    forall n ∈ N, in REVERSEPREORDER:
        forall c ∈ CHILDREN(n), in FORWARD order:
            compute Equations 9, 10          (S2 — blocking consumption)
        compute Equations 1..8               (S1 — propagating consumption)
    forall n ∈ N, in PREORDER:
        compute Equations 11..13             (S3 — placing production)
    forall n ∈ N:
        compute Equations 14, 15             (S4 — result variables)

Every equation is evaluated exactly once per node, which gives the O(E)
complexity of §5.2.  S1/S2 are timing-independent; S3/S4 run once for
EAGER and once for LAZY.

The solver is direction-agnostic: pass a
:class:`~repro.graph.views.ForwardView` for BEFORE problems or a
:class:`~repro.graph.views.BackwardView` for AFTER problems.

When a tracing collector is active (``repro.obs``), the solver records
per-sweep timings, per-equation evaluation counts keyed by the paper's
equation numbers, and the backward fixpoint's round/convergence data —
one ``solver/run`` event per solve.  With the default
:class:`~repro.obs.collector.NullCollector` nothing is recorded and the
hot path only pays an ``is None`` test per equation.
"""

from repro.core import equations as eq
from repro.core.kernel.planned import PlannedSolver
from repro.core.kernel.vector import VectorSolver
from repro.core.problem import Direction, Timing
from repro.core.solution import Solution
from repro.graph.views import cached_view
from repro.obs.collector import current_collector
from repro.util.errors import SolverBudgetError, SolverError

#: Backend :func:`solve` uses when none is requested.  ``"planned"``
#: runs the compiled-schedule kernel (``repro.core.kernel``);
#: ``"vector"`` the level-batched bit-matrix kernel (word-parallel with
#: NumPy, scalar fallback without); ``"reference"`` runs
#: :class:`GiveNTakeSolver`, the differential oracle.  All three are
#: bit-identical for all fifteen variables.
DEFAULT_BACKEND = "planned"

BACKENDS = ("planned", "vector", "reference")


class GiveNTakeSolver:
    """Stateful solver; :func:`solve` is the usual entry point.

    ``max_rounds`` is an optional iteration guard on the backward
    consumption fixpoint: when set, a solve that would need more
    consumption sweeps raises :class:`SolverBudgetError` instead of
    running unbounded (the hardened pipeline catches it and degrades).
    Without it the natural bound applies, and a sweep count that
    exhausts even that without reaching the fixpoint raises
    :class:`SolverError` — the solver never silently returns an
    unconverged solution.
    """

    def __init__(self, view, problem, max_rounds=None):
        self.view = view
        self.problem = problem
        self.max_rounds = max_rounds
        problem.validate_against(view)
        self.solution = Solution(problem, view)
        self._obs = current_collector()
        self._eq_counts = {} if self._obs.enabled else None
        self._consumption_sweeps = 0

    def run(self):
        obs = self._obs
        start = obs.clock() if obs.enabled else 0.0
        natural = budget = None
        checked = False
        self._sweep_consumption()
        converged = True
        if self.view.requires_consumption_iteration:
            # Backward views with jumps: repeat until the fixpoint (at
            # most one extra round per crossed nesting level, see
            # BackwardView.requires_consumption_iteration).
            natural = max(
                (self.view.ifg.level(m) for m, _ in self.view.ifg.jump_edges()),
                default=0,
            ) + 1
            budget = natural if self.max_rounds is None else self.max_rounds
            converged = False
            for _ in range(budget):
                if not self._sweep_consumption():
                    converged = True
                    break
            if not converged:
                # Every budgeted sweep changed something.  Decide with
                # the side-effect-free check: a raising run must leave
                # the solution exactly as the budgeted sweeps left it,
                # and a passing run must not get a free extra sweep.
                checked = True
                converged = self._consumption_converged()
            if not converged:
                if self.max_rounds is not None:
                    raise SolverBudgetError(
                        f"consumption fixpoint not reached within "
                        f"{budget} rounds (natural bound {natural})"
                    )
                raise SolverError(
                    f"consumption fixpoint not reached within the "
                    f"natural bound of {natural} rounds"
                )
        for timing in Timing:
            self._sweep_production(timing)
            self._sweep_results(timing)
        if obs.enabled:
            obs.event(
                "solver", "run",
                direction=self.view.direction,
                backend="reference",
                nodes=len(self.view.nodes_preorder()),
                consumption_sweeps=self._consumption_sweeps,
                rounds=self._consumption_sweeps - 1,
                natural_bound=natural,
                budget=budget,
                converged=converged,
                convergence_checked=checked,
                equation_evaluations={
                    str(number): count
                    for number, count in sorted(self._eq_counts.items())
                },
                duration_s=obs.clock() - start,
            )
            for number, count in self._eq_counts.items():
                obs.count("equation_evaluations", number, n=count)
        return self.solution

    # -- sweeps ------------------------------------------------------------

    def _sweep_consumption(self):
        """One REVERSEPREORDER S1/S2 sweep; returns whether anything
        changed (used by the backward-with-jumps iteration)."""
        obs = self._obs
        counts = self._eq_counts
        sweep_start = obs.clock() if obs.enabled else 0.0
        view, problem, sol = self.view, self.problem, self.solution
        changed = False
        numbers = eq.EQUATION_NUMBERS

        def put(name, node, bits):
            nonlocal changed
            if counts is not None:
                number = numbers[name]
                counts[number] = counts.get(number, 0) + 1
            if sol.bits(name, node) != bits:
                sol.set_bits(name, node, bits)
                changed = True

        for n in view.nodes_reverse_preorder():
            for c in view.children(n):
                put("GIVE_loc", c, eq.eq9_give_loc(problem, view, sol, c))
                put("STEAL_loc", c, eq.eq10_steal_loc(problem, view, sol, c))
            put("STEAL", n, eq.eq1_steal(problem, view, sol, n))
            put("GIVE", n, eq.eq2_give(problem, view, sol, n))
            put("BLOCK", n, eq.eq3_block(problem, view, sol, n))
            put("TAKEN_out", n, eq.eq4_taken_out(problem, view, sol, n))
            put("TAKE", n, eq.eq5_take(problem, view, sol, n))
            put("TAKEN_in", n, eq.eq6_taken_in(problem, view, sol, n))
            put("BLOCK_loc", n, eq.eq7_block_loc(problem, view, sol, n))
            put("TAKE_loc", n, eq.eq8_take_loc(problem, view, sol, n))
        self._consumption_sweeps += 1
        if obs.enabled:
            obs.event("solver", "sweep", kind="consumption",
                      index=self._consumption_sweeps, changed=changed,
                      duration_s=obs.clock() - sweep_start)
            obs.count("sweeps", "consumption")
        return changed

    def _consumption_converged(self):
        """Whether another S1/S2 sweep would change anything — computed
        *without* writing to the solution.

        The stored state is a fixpoint exactly when every equation,
        evaluated against it, reproduces its stored value; the first
        mismatch short-circuits.  Unlike :meth:`_sweep_consumption`,
        evaluations here do not count toward the per-equation totals
        (they are a check, not part of the elimination order).
        """
        view, problem, sol = self.view, self.problem, self.solution
        recompute = (
            ("STEAL", eq.eq1_steal),
            ("GIVE", eq.eq2_give),
            ("BLOCK", eq.eq3_block),
            ("TAKEN_out", eq.eq4_taken_out),
            ("TAKE", eq.eq5_take),
            ("TAKEN_in", eq.eq6_taken_in),
            ("BLOCK_loc", eq.eq7_block_loc),
            ("TAKE_loc", eq.eq8_take_loc),
        )

        def stable():
            for n in view.nodes_reverse_preorder():
                for c in view.children(n):
                    if sol.bits("GIVE_loc", c) != eq.eq9_give_loc(
                            problem, view, sol, c):
                        return False
                    if sol.bits("STEAL_loc", c) != eq.eq10_steal_loc(
                            problem, view, sol, c):
                        return False
                for name, equation in recompute:
                    if sol.bits(name, n) != equation(problem, view, sol, n):
                        return False
            return True

        converged = stable()
        if self._obs.enabled:
            self._obs.event("solver", "convergence_check",
                            converged=converged)
        return converged

    def _sweep_production(self, timing):
        obs = self._obs
        counts = self._eq_counts
        sweep_start = obs.clock() if obs.enabled else 0.0
        view, problem, sol = self.view, self.problem, self.solution
        root = view.root
        nodes = view.nodes_preorder()
        if counts is not None:
            # S3 evaluates each equation exactly once per node, so the
            # per-equation totals are uniform: add them per sweep, not
            # per node (identical reported counts, no dict get per node).
            for number in (11, 12, 13):
                counts[number] = counts.get(number, 0) + len(nodes)
        for n in nodes:
            sol.set_bits(
                "GIVEN_in", n, eq.eq11_given_in(problem, view, sol, n, timing), timing
            )
            sol.set_bits(
                "GIVEN", n, eq.eq12_given(problem, view, sol, n, timing, root), timing
            )
            sol.set_bits(
                "GIVEN_out", n, eq.eq13_given_out(problem, view, sol, n, timing), timing
            )
        if obs.enabled:
            obs.event("solver", "sweep", kind="production",
                      timing=timing.value,
                      duration_s=obs.clock() - sweep_start)
            obs.count("sweeps", "production")

    def _sweep_results(self, timing):
        obs = self._obs
        counts = self._eq_counts
        sweep_start = obs.clock() if obs.enabled else 0.0
        view, problem, sol = self.view, self.problem, self.solution
        nodes = view.nodes_preorder()
        if counts is not None:
            for number in (14, 15):
                counts[number] = counts.get(number, 0) + len(nodes)
        for n in nodes:
            sol.set_bits(
                "RES_in", n, eq.eq14_res_in(problem, view, sol, n, timing), timing
            )
            sol.set_bits(
                "RES_out", n, eq.eq15_res_out(problem, view, sol, n, timing), timing
            )
        if obs.enabled:
            obs.event("solver", "sweep", kind="results",
                      timing=timing.value,
                      duration_s=obs.clock() - sweep_start)
            obs.count("sweeps", "results")


def make_view(ifg, direction):
    """The (per-graph cached) view matching a problem direction."""
    if direction is Direction.BEFORE:
        return cached_view(ifg, "before")
    if direction is Direction.AFTER:
        return cached_view(ifg, "after")
    raise SolverError(f"unknown direction {direction!r}")


def solve(ifg, problem, view=None, max_rounds=None, backend=None):
    """Solve ``problem`` on interval flow graph ``ifg``.

    Returns the solution store holding all dataflow variables, including
    the EAGER and LAZY result variables: a
    :class:`~repro.core.kernel.slots.SlotSolution` from the (default)
    ``"planned"`` backend, a :class:`~repro.core.solution.Solution` from
    the ``"reference"`` backend — same ``bits``/``elements``/
    ``nodes_with`` API, bit-identical values (``docs/scaling.md``).
    ``max_rounds`` caps the backward consumption iteration (see
    :class:`GiveNTakeSolver`); the default is the natural bound.
    """
    if view is None:
        view = make_view(ifg, problem.direction)
    if backend is None:
        backend = DEFAULT_BACKEND
    if backend == "planned":
        return PlannedSolver(view, problem, max_rounds=max_rounds).run()
    if backend == "vector":
        return VectorSolver(view, problem, max_rounds=max_rounds).run()
    if backend == "reference":
        return GiveNTakeSolver(view, problem, max_rounds=max_rounds).run()
    raise SolverError(f"unknown solver backend {backend!r}")
