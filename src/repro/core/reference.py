"""A naive fixpoint solver — the correctness oracle for *GiveNTake*.

The paper's §5 argues that an evaluation order exists in which every
equation's right hand side is fully known, so each equation needs to be
evaluated exactly once ("fastness" in the sense of Graham & Wegman).
This module deliberately ignores that insight: it evaluates all fifteen
equations for all nodes, over and over, until nothing changes.

Because the equation dependencies are acyclic (consumption flows
backward/upward, production forward/downward), the fixpoint is unique —
so the iterative result must equal the one-pass result *exactly*, for
every variable at every node.  The property tests check that on random
programs; the benchmark shows what the elimination order buys.
"""

from repro.core import equations as eq
from repro.core.problem import Timing
from repro.core.solution import SHARED_VARIABLES, TIMED_VARIABLES, Solution
from repro.core.solver import make_view
from repro.util.errors import SolverError


def solve_iterative(ifg, problem, view=None, max_rounds=1000):
    """Solve by chaotic iteration to the (unique) fixpoint."""
    if view is None:
        view = make_view(ifg, problem.direction)
    problem.validate_against(view)
    solution = Solution(problem, view)
    nodes = view.nodes_preorder()
    root = view.root

    shared_updates = [
        ("GIVE_loc", lambda n: eq.eq9_give_loc(problem, view, solution, n)),
        ("STEAL_loc", lambda n: eq.eq10_steal_loc(problem, view, solution, n)),
        ("STEAL", lambda n: eq.eq1_steal(problem, view, solution, n)),
        ("GIVE", lambda n: eq.eq2_give(problem, view, solution, n)),
        ("BLOCK", lambda n: eq.eq3_block(problem, view, solution, n)),
        ("TAKEN_out", lambda n: eq.eq4_taken_out(problem, view, solution, n)),
        ("TAKE", lambda n: eq.eq5_take(problem, view, solution, n)),
        ("TAKEN_in", lambda n: eq.eq6_taken_in(problem, view, solution, n)),
        ("BLOCK_loc", lambda n: eq.eq7_block_loc(problem, view, solution, n)),
        ("TAKE_loc", lambda n: eq.eq8_take_loc(problem, view, solution, n)),
    ]

    _iterate(solution, nodes, shared_updates, None, max_rounds)

    for timing in Timing:
        timed_updates = [
            ("GIVEN_in",
             lambda n, t=timing: eq.eq11_given_in(problem, view, solution, n, t)),
            ("GIVEN",
             lambda n, t=timing: eq.eq12_given(problem, view, solution, n, t, root)),
            ("GIVEN_out",
             lambda n, t=timing: eq.eq13_given_out(problem, view, solution, n, t)),
            ("RES_in",
             lambda n, t=timing: eq.eq14_res_in(problem, view, solution, n, t)),
            ("RES_out",
             lambda n, t=timing: eq.eq15_res_out(problem, view, solution, n, t)),
        ]
        _iterate(solution, nodes, timed_updates, timing, max_rounds)
    return solution


def _iterate(solution, nodes, updates, timing, max_rounds):
    for _ in range(max_rounds):
        changed = False
        for node in nodes:
            # S2 variables are only defined for children (not ROOT);
            # evaluating them for ROOT is harmless (no one reads them),
            # but we skip to mirror the one-pass solver's store exactly.
            for name, compute in updates:
                if timing is None and name in ("GIVE_loc", "STEAL_loc") \
                        and node is solution.view.root:
                    continue
                new_bits = compute(node)
                if new_bits != solution.bits(name, node, timing):
                    solution.set_bits(name, node, new_bits, timing)
                    changed = True
        if not changed:
            return
    raise SolverError("fixpoint iteration did not converge "
                      f"within {max_rounds} rounds")


def solutions_equal(first, second, nodes):
    """Exact equality of every variable at every node."""
    for node in nodes:
        for name in SHARED_VARIABLES:
            if first.bits(name, node) != second.bits(name, node):
                return False
        for timing in Timing:
            for name in TIMED_VARIABLES:
                if first.bits(name, node, timing) != second.bits(name, node, timing):
                    return False
    return True


def differences(first, second, nodes):
    """Human-readable list of variable mismatches (for debugging)."""
    result = []
    for node in nodes:
        for name in SHARED_VARIABLES:
            a, b = first.bits(name, node), second.bits(name, node)
            if a != b:
                result.append((name, node, a, b))
        for timing in Timing:
            for name in TIMED_VARIABLES:
                a = first.bits(name, node, timing)
                b = second.bits(name, node, timing)
                if a != b:
                    result.append((f"{name}^{timing.value}", node, a, b))
    return result
