"""Per-node dataflow variable storage for a solved instance.

Variables are addressed by their paper names (``"STEAL"``, ``"TAKEN_in"``,
``"GIVEN_out"``, …).  The S1/S2 variables are timing-independent; the
S3/S4 variables exist once per timing (EAGER/LAZY).
"""

from repro.core.problem import Timing

#: Variables shared between EAGER and LAZY (equation sets S1 and S2).
SHARED_VARIABLES = (
    "STEAL",       # Eq 1
    "GIVE",        # Eq 2
    "BLOCK",       # Eq 3
    "TAKEN_out",   # Eq 4
    "TAKE",        # Eq 5
    "TAKEN_in",    # Eq 6
    "BLOCK_loc",   # Eq 7
    "TAKE_loc",    # Eq 8
    "GIVE_loc",    # Eq 9
    "STEAL_loc",   # Eq 10
)

#: Variables computed per timing (equation sets S3 and S4).
TIMED_VARIABLES = (
    "GIVEN_in",    # Eq 11
    "GIVEN",       # Eq 12
    "GIVEN_out",   # Eq 13
    "RES_in",      # Eq 14
    "RES_out",     # Eq 15
)


class Solution:
    """All dataflow variables of one solved GIVE-N-TAKE instance."""

    def __init__(self, problem, view):
        self.problem = problem
        self.view = view
        self._order = None
        self._shared = {name: {} for name in SHARED_VARIABLES}
        self._timed = {
            timing: {name: {} for name in TIMED_VARIABLES} for timing in Timing
        }

    def _store(self, name, timing):
        if name in self._shared:
            return self._shared[name]
        if timing is None:
            raise KeyError(f"variable {name} requires a timing")
        return self._timed[timing][name]

    def set_bits(self, name, node, bits, timing=None):
        self._store(name, timing)[node] = bits

    def bits(self, name, node, timing=None):
        """Bitset value of variable ``name`` at ``node``."""
        return self._store(name, timing).get(node, 0)

    def elements(self, name, node, timing=None):
        """Value as a frozenset of universe elements (for tests/printing)."""
        return self.problem.universe.frozen(self.bits(name, node, timing))

    def nodes_with(self, name, element, timing=None):
        """All nodes whose variable ``name`` contains ``element`` — the
        shape of the paper's §4 example listings (e.g. ``y_b ∈
        STEAL({2,3})``).

        Returned in deterministic *view preorder* regardless of the
        order the solver inserted values (the S1/S2 sweeps insert in
        REVERSEPREORDER), with nodes outside the view appended in
        insertion order — the same contract every backend's store
        honors, so reports render identically."""
        bit = self.problem.universe.bit(element)
        store = self._store(name, timing)
        if self._order is None:
            self._order = {node: index for index, node
                           in enumerate(self.view.nodes_preorder())}
        order = self._order
        known = len(order)
        ranked = sorted(
            (node for node, bits in store.items() if bits & bit),
            key=lambda node: order.get(node, known))
        return ranked

    def format_node(self, node, timing=None):
        """Multi-line dump of every variable at ``node`` (debugging)."""
        universe = self.problem.universe
        lines = [f"node {node}:"]
        for name in SHARED_VARIABLES:
            lines.append(f"  {name:10} = {universe.format(self.bits(name, node))}")
        for t in Timing if timing is None else (timing,):
            for name in TIMED_VARIABLES:
                value = universe.format(self.bits(name, node, t))
                lines.append(f"  {name}^{t.value:5} = {value}")
        return "\n".join(lines)
