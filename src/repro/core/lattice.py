"""The dataflow universe and its powerset lattice.

GIVE-N-TAKE is a *set* framework: every dataflow variable holds a subset
of a finite universe of elements (array portions identified by subscript
value numbers in the communication instance; expressions in the PRE
instance).  Elements are interned into a :class:`Universe` and sets are
plain Python integers used as bitsets — union is ``|``, intersection
``&``, difference ``& ~``.

The paper's convention that an equation asking for absent neighbors gets
the *empty* set — even for intersections — is implemented by
:func:`meet_over`.
"""

from repro.util.errors import SolverError


class Universe:
    """An interned, ordered universe of dataflow elements.

    Elements may be any hashable objects; their string form is used for
    stable printing.  ``bit(e)`` gives the singleton bitset of ``e``.
    """

    def __init__(self, elements=()):
        self._index = {}
        self._elements = []
        self._frozen = False
        for element in elements:
            self.add(element)

    def add(self, element):
        """Intern ``element``; return its index (idempotent).

        Raises :class:`~repro.util.errors.SolverError` once the universe
        is :meth:`frozen <freeze>` — a new element would change ``top``
        and the meaning of every bitset already baked into solutions."""
        if element in self._index:
            return self._index[element]
        if self._frozen:
            raise SolverError(
                f"cannot intern {element!r}: the universe is frozen "
                f"(bitsets built against top of {len(self._elements)} "
                f"elements would be silently invalidated)")
        index = len(self._elements)
        self._index[element] = index
        self._elements.append(element)
        return index

    def freeze(self):
        """Seal the universe: further :meth:`add` calls of *new* elements
        raise :class:`~repro.util.errors.SolverError`.

        Call this once a problem's initial variables are fully built —
        ``top`` and every ``bit()`` handed out are only stable while the
        element count is.  Idempotent; returns ``self`` for chaining."""
        self._frozen = True
        return self

    @property
    def is_frozen(self):
        return self._frozen

    def __len__(self):
        return len(self._elements)

    def __contains__(self, element):
        return element in self._index

    def __iter__(self):
        return iter(self._elements)

    def index(self, element):
        try:
            return self._index[element]
        except KeyError:
            raise SolverError(f"element {element!r} is not in the universe") from None

    def element(self, index):
        return self._elements[index]

    def bit(self, element):
        """The singleton bitset containing ``element``."""
        return 1 << self.index(element)

    def bits(self, elements):
        """The bitset containing all of ``elements``."""
        result = 0
        for element in elements:
            result |= self.bit(element)
        return result

    @property
    def bottom(self):
        """⊥ — the empty set."""
        return 0

    @property
    def top(self):
        """⊤ — the whole universe."""
        return (1 << len(self._elements)) - 1

    def members(self, bits):
        """The elements of a bitset, in universe order.

        Iterates *set* bits only (``bits & -bits`` isolates the lowest
        one, ``bit_length`` names it), so a singleton set costs O(1)
        instead of O(|universe|) — this is on the render/placement hot
        path via :meth:`frozen` and :meth:`format`."""
        elements = self._elements
        result = []
        while bits:
            low = bits & -bits
            result.append(elements[low.bit_length() - 1])
            bits ^= low
        return result

    def frozen(self, bits):
        """The elements of a bitset as a frozenset (handy in tests)."""
        return frozenset(self.members(bits))

    def format(self, bits):
        """Stable ``{a, b}`` rendering of a bitset."""
        rendered = ", ".join(str(e) for e in self.members(bits))
        return "{" + rendered + "}"


def union_over(values):
    """⋃ of an iterable of bitsets (empty iterable → ⊥)."""
    result = 0
    for value in values:
        result |= value
    return result


def meet_over(values):
    """⋂ of an iterable of bitsets, with the paper's convention that the
    meet over *no* neighbors is the empty set (not ⊤)."""
    result = None
    for value in values:
        result = value if result is None else (result & value)
    return 0 if result is None else result
