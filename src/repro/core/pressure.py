"""Resource-pressure control: capping production region spans (§6).

The paper: "the computations compete for resources, like registers or
message buffers ... certain extensions (such as a heuristic for
inserting additional STEAL_init's which blocks production) could help to
solve this conflict."

This module implements that heuristic.  A production region (from the
EAGER start to the LAZY completion) occupies a resource — a message
buffer, a register — for its whole extent.  :func:`limit_production_span`
iteratively measures each element's span in PREORDER distance and, where
it exceeds ``max_span``, injects a ``STEAL_init`` at an intermediate node,
forcing the solver to start production later.  Steals only ever *delay*
production, so every intermediate solution still satisfies C1/C3; the
trade is shorter buffer lifetimes against less latency hiding (and
possibly re-production).
"""

from repro.core.placement import Placement
from repro.core.problem import Timing
from repro.core.solver import solve
from repro.graph.traversal import preorder


def measure_spans(ifg, placement):
    """Per-element region spans, in PREORDER distance.

    Returns a dict element -> (span, eager_node, lazy_node) for the
    widest region of each element (first EAGER site to last LAZY site).
    """
    position = {node: i for i, node in enumerate(preorder(ifg))}
    spans = {}
    eager_first = {}
    lazy_last = {}
    for production in placement.productions():
        for element in production.elements:
            pos = position[production.node]
            if production.timing is Timing.EAGER:
                if element not in eager_first or pos < position[eager_first[element]]:
                    eager_first[element] = production.node
            else:
                if element not in lazy_last or pos > position[lazy_last[element]]:
                    lazy_last[element] = production.node
    for element, eager_node in eager_first.items():
        lazy_node = lazy_last.get(element)
        if lazy_node is None:
            continue
        span = position[lazy_node] - position[eager_node]
        spans[element] = (span, eager_node, lazy_node)
    return spans


def limit_production_span(ifg, problem, max_span, max_rounds=8):
    """Re-solve ``problem`` until no production region spans more than
    ``max_span`` PREORDER positions (or rounds are exhausted).

    Mutates ``problem`` by adding blocking steals; returns the final
    (solution, placement, rounds_used).
    """
    order = [n for n in preorder(ifg) if n is not ifg.root]
    position = {node: i for i, node in enumerate(order)}

    solution = solve(ifg, problem)
    placement = Placement(ifg, problem, solution)
    for round_number in range(1, max_rounds + 1):
        too_wide = []
        for element, (span, eager_node, lazy_node) in measure_spans(
                ifg, placement).items():
            if span > max_span:
                too_wide.append((element, eager_node, lazy_node))
        if not too_wide:
            return solution, placement, round_number - 1
        for element, eager_node, lazy_node in too_wide:
            blocker = _blocking_node(order, position, eager_node, lazy_node,
                                     max_span)
            if blocker is not None:
                problem.add_steal(blocker, element)
        solution = solve(ifg, problem)
        placement = Placement(ifg, problem, solution)
    return solution, placement, max_rounds


def _blocking_node(order, position, eager_node, lazy_node, max_span):
    """A node shortly after the region start where a steal will force
    production to restart later.  Never the lazy node itself (that
    would destroy the element the moment it completes)."""
    start = position.get(eager_node)
    end = position.get(lazy_node)
    if start is None or end is None:
        return None
    target = min(start + max(1, max_span // 2), end - 1)
    if target <= start:
        return None
    return order[target]
