"""Production-region extraction.

A *region* is a matched pair of an EAGER production (start) and the LAZY
production that completes it, on one execution path.  The distance
between them — measured in work statements executed in between — is the
window available for latency hiding, the quantity GIVE-N-TAKE's
non-atomicity exists to maximize (paper §1, §6).

:func:`extract_regions` replays a placement along bounded paths with the
same trigger rules as the checker and yields every region; C1 (balance)
guarantees the pairing is well defined.
"""

from dataclasses import dataclass

from repro.core.paths import enumerate_paths
from repro.core.placement import Position
from repro.core.problem import Direction, Timing
from repro.graph.cfg import NodeKind
from repro.graph.interval_graph import EdgeType


@dataclass(frozen=True)
class Region:
    """One matched production region on one path.

    ``work`` counts the computational statements executed strictly
    between the EAGER start and the LAZY completion — the latency-hiding
    window.
    """

    element: object
    path_index: int
    start_step: int
    end_step: int
    work: int

    @property
    def degenerate(self):
        """True when production start and completion are adjacent (no
        hiding window) — what an atomic placement always gets."""
        return self.work == 0


def extract_regions(ifg, problem, placement, max_paths=100,
                    max_node_visits=3, min_trips=0):
    """All production regions over the bounded paths of ``ifg``."""
    paths = enumerate_paths(ifg, max_paths=max_paths,
                            max_node_visits=max_node_visits,
                            min_trips=min_trips)
    regions = []
    for index, path in enumerate(paths):
        regions.extend(_replay(ifg, problem, placement, path, index))
    return regions


def region_summary(regions):
    """(count, mean work window, share of degenerate regions)."""
    if not regions:
        return (0, 0.0, 0.0)
    total = len(regions)
    mean_work = sum(r.work for r in regions) / total
    degenerate = sum(1 for r in regions if r.degenerate) / total
    return (total, mean_work, degenerate)


def _replay(ifg, problem, placement, path, path_index):
    direction = problem.direction
    if direction is Direction.AFTER:
        steps = list(reversed(path))
        first_key, second_key = Position.AFTER, Position.BEFORE
    else:
        steps = list(path)
        first_key, second_key = Position.BEFORE, Position.AFTER

    universe = problem.universe
    open_regions = {}  # element -> (start_step, work_at_start)
    regions = []
    work = 0

    def incoming_is_cycle(i):
        if i == 0:
            return False
        if direction is Direction.AFTER:
            return ifg.edge_type(steps[i], steps[i - 1]) is EdgeType.ENTRY
        return ifg.edge_type(steps[i - 1], steps[i]) is EdgeType.CYCLE

    def outgoing_is_fj(i):
        if i == len(steps) - 1:
            return False
        if direction is Direction.AFTER:
            real = ifg.edge_type(steps[i + 1], steps[i])
        else:
            real = ifg.edge_type(steps[i], steps[i + 1])
        return real in (EdgeType.FORWARD, EdgeType.JUMP)

    def trigger(node, position, step):
        nonlocal regions
        for element in universe.members(
                placement.bits_at(node, position, Timing.EAGER)):
            open_regions[element] = (step, work)
        for element in universe.members(
                placement.bits_at(node, position, Timing.LAZY)):
            if element in open_regions:
                start_step, work_at_start = open_regions.pop(element)
                regions.append(Region(element, path_index, start_step, step,
                                      work - work_at_start))

    for i, node in enumerate(steps):
        if not incoming_is_cycle(i):
            trigger(node, first_key, i)
        if node.kind is NodeKind.STMT:
            work += 1
        if outgoing_is_fj(i):
            trigger(node, second_key, i)
    return regions
