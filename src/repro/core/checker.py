"""Ground-truth validation of placements (paper §3.2).

A placement is replayed along bounded execution paths.  Per element the
replay tracks:

* ``open`` — an EAGER production started, its LAZY completion pending
  (a message sent but not yet received);
* ``avail`` — a completed production (or free GIVE) not destroyed since;
* ``pending`` — a completed *placed* production not yet consumed (GIVEs
  don't count: they are free).

Checked criteria:

* **C1 balance** — EAGER/LAZY productions alternate exactly: no double
  send, no receive without send, nothing left open at path end, and no
  destruction while a production region is open.
* **C2 safety** — everything placed is consumed before being destroyed
  or the path ending.  Productions hoisted out of zero-trip loops
  violate strict C2 on the zero-trip paths *by design* (the paper
  accepts overcommunication there); such violations are reported with
  kind ``"safety"`` and can be ignored via ``report.ok(ignore=...)``.
* **C3 sufficiency** — every consumption finds the element available.
* **O1** — no production of an element that is already available.

For AFTER problems paths are replayed in reverse with edge roles
swapped, exactly mirroring the solver's BackwardView.
"""

from dataclasses import dataclass

from repro.core.paths import enumerate_paths
from repro.core.placement import Position
from repro.core.problem import Direction, Timing
from repro.graph.interval_graph import EdgeType


@dataclass(frozen=True)
class Violation:
    """One criterion violation found on one path."""

    kind: str        # "balance" | "safety" | "sufficiency" | "redundant"
    criterion: str   # "C1" | "C2" | "C3" | "O1"
    element: object
    node: object
    message: str
    path_index: int

    def __str__(self):
        return (f"[{self.criterion}/{self.kind}] {self.element} at {self.node}: "
                f"{self.message} (path #{self.path_index})")


class CheckReport:
    """All violations found over all checked paths.

    ``truncated`` records that path enumeration hit its cap, i.e. the
    verdict covers a prefix of the path space rather than all of it —
    callers that certify placements (the hardened pipeline) surface it.
    """

    def __init__(self, violations, paths_checked, truncated=False):
        self.violations = violations
        self.paths_checked = paths_checked
        self.truncated = truncated

    def by_kind(self, kind):
        return [v for v in self.violations if v.kind == kind]

    def by_criterion(self, criterion):
        """Violations of one paper criterion ("C1", "C2", "C3", "O1")."""
        return [v for v in self.violations if v.criterion == criterion]

    def ok(self, ignore=()):
        """True when no violations remain after dropping the listed
        kinds (e.g. ``ignore=("safety",)`` to permit zero-trip
        overproduction)."""
        return not [v for v in self.violations if v.kind not in ignore]

    def summary(self):
        suffix = ", truncated" if self.truncated else ""
        if not self.violations:
            return f"OK ({self.paths_checked} paths{suffix})"
        kinds = {}
        for violation in self.violations:
            kinds[violation.kind] = kinds.get(violation.kind, 0) + 1
        detail = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
        return (f"{len(self.violations)} violations ({detail}) over "
                f"{self.paths_checked} paths{suffix}")

    def __str__(self):
        lines = [self.summary()]
        lines.extend(str(v) for v in self.violations[:20])
        if len(self.violations) > 20:
            lines.append(f"... {len(self.violations) - 20} more")
        return "\n".join(lines)


def check_placement(ifg, problem, placement, max_paths=200, max_node_visits=3,
                    min_trips=0):
    """Replay ``placement`` on bounded paths of ``ifg``; return a
    :class:`CheckReport`.

    With the default loop-parametric element semantics (see
    ``Problem.trust_loop_side_effects``), sufficiency is exact on paths
    where entered loops run at least once — pass ``min_trips=1`` to
    restrict to those."""
    paths = enumerate_paths(ifg, max_paths=max_paths,
                            max_node_visits=max_node_visits, min_trips=min_trips)
    violations = []
    for index, path in enumerate(paths):
        violations.extend(_replay(ifg, problem, placement, path, index))
    return CheckReport(violations, len(paths), truncated=len(paths) >= max_paths)


def check_placement_dual(ifg, problem, placement, max_paths=200,
                         max_node_visits=3):
    """One path enumeration and replay, two verdicts.

    Returns ``(full, min_trip)``: ``full`` is the report over all
    bounded paths (what ``check_placement`` with ``min_trips=0``
    computes); ``min_trip`` restricts the *same* replayed paths to those
    on which every entered loop runs its body at least once — the paths
    on which sufficiency is exact.  Callers that previously ran
    ``check_placement`` twice (once per ``min_trips`` value) get both
    answers for a single ``max_paths``-bounded enumeration and replay.

    When the full enumeration truncates at ``max_paths``, filtering it
    is no longer sound for the min-trip verdict: the DFS budget can be
    spent entirely on zero-trip prefixes, leaving few or *no* min-trip
    paths and a vacuously clean sufficiency report.  In that case the
    min-trip report is computed from its own ``min_trips=1``
    enumeration, which dedicates the whole budget to the paths the
    verdict depends on.
    """
    paths = enumerate_paths(ifg, max_paths=max_paths,
                            max_node_visits=max_node_visits)
    violations = []
    trip_violations = []
    trip_paths = 0
    for index, path in enumerate(paths):
        found = _replay(ifg, problem, placement, path, index)
        violations.extend(found)
        if _path_has_min_trips(ifg.forest, path):
            trip_paths += 1
            trip_violations.extend(found)
    truncated = len(paths) >= max_paths
    trip_truncated = truncated
    if truncated:
        trip_enum = enumerate_paths(ifg, max_paths=max_paths,
                                    max_node_visits=max_node_visits,
                                    min_trips=1)
        trip_violations = []
        for index, path in enumerate(trip_enum):
            trip_violations.extend(
                _replay(ifg, problem, placement, path, index))
        trip_paths = len(trip_enum)
        trip_truncated = len(trip_enum) >= max_paths
    return (CheckReport(violations, len(paths), truncated=truncated),
            CheckReport(trip_violations, trip_paths,
                        truncated=trip_truncated))


def _path_has_min_trips(forest, path):
    """Whether every loop *entered* on ``path`` executes its body at
    least once — mirrors the successor restriction ``enumerate_paths``
    applies under ``min_trips=1``."""
    for i in range(len(path) - 1):
        node = path[i]
        if not forest.is_header(node):
            continue
        previous = path[i - 1] if i else None
        arrived_externally = (previous is None
                              or not forest.contains(node, previous))
        if arrived_externally and not forest.contains(node, path[i + 1]):
            return False
    return True


# ---------------------------------------------------------------------------


def _replay(ifg, problem, placement, path, path_index):
    """Replay one path; return its violations."""
    direction = problem.direction
    if direction is Direction.AFTER:
        steps = list(reversed(path))
        first_key, second_key = Position.AFTER, Position.BEFORE
    else:
        steps = list(path)
        first_key, second_key = Position.BEFORE, Position.AFTER

    def incoming_is_cycle(i):
        """Whether the walk arrives at steps[i] along a (view) CYCLE edge
        — i.e. a loop back edge; header-entry productions are skipped on
        back-edge arrivals (they live in the preheader position)."""
        if i == 0:
            return False
        if direction is Direction.AFTER:
            real = ifg.edge_type(steps[i], steps[i - 1])
            return real is EdgeType.ENTRY  # reversal maps ENTRY -> CYCLE
        return ifg.edge_type(steps[i - 1], steps[i]) is EdgeType.CYCLE

    def outgoing_is_fj(i):
        """Whether the walk leaves steps[i] along a (view) FORWARD or
        JUMP edge — the only edges exit productions (Eq 15) live on."""
        if i == len(steps) - 1:
            return False
        if direction is Direction.AFTER:
            real = ifg.edge_type(steps[i + 1], steps[i])
        else:
            real = ifg.edge_type(steps[i], steps[i + 1])
        return real in (EdgeType.FORWARD, EdgeType.JUMP)

    state = _State(problem.universe, path_index)

    for i, node in enumerate(steps):
        if not incoming_is_cycle(i):
            state.produce_eager(node, placement.bits_at(node, first_key, Timing.EAGER))
            state.produce_lazy(node, placement.bits_at(node, first_key, Timing.LAZY))
        state.consume(node, problem.take_init(node))
        state.give(node, problem.give_init(node))
        state.steal(node, problem.steal_init(node))
        if outgoing_is_fj(i):
            state.produce_eager(node, placement.bits_at(node, second_key, Timing.EAGER))
            state.produce_lazy(node, placement.bits_at(node, second_key, Timing.LAZY))

    state.finish(steps[-1])
    return state.violations


class _State:
    """Per-path replay state over bitsets."""

    def __init__(self, universe, path_index):
        self.universe = universe
        self.path_index = path_index
        self.open = 0
        self.avail = 0
        self.pending = 0
        self.violations = []

    def _flag(self, kind, criterion, bits, node, message):
        for element in self.universe.members(bits):
            self.violations.append(
                Violation(kind, criterion, element, node, message, self.path_index)
            )

    def produce_eager(self, node, bits):
        if not bits:
            return
        double = bits & self.open
        if double:
            self._flag("balance", "C1", double, node, "EAGER production while already open")
        redundant = bits & self.avail
        if redundant:
            self._flag("redundant", "O1", redundant, node,
                       "production of an already available element")
        self.open |= bits

    def produce_lazy(self, node, bits):
        if not bits:
            return
        unmatched = bits & ~self.open
        if unmatched:
            self._flag("balance", "C1", unmatched, node,
                       "LAZY production without matching EAGER production")
        self.open &= ~bits
        self.avail |= bits
        self.pending |= bits

    def consume(self, node, bits):
        if not bits:
            return
        missing = bits & ~self.avail
        if missing:
            self._flag("sufficiency", "C3", missing, node,
                       "consumption of an unavailable element")
        self.pending &= ~bits

    def give(self, node, bits):
        self.avail |= bits

    def steal(self, node, bits):
        if not bits:
            return
        in_region = bits & self.open
        if in_region:
            self._flag("balance", "C1", in_region, node,
                       "destruction inside an open production region")
            self.open &= ~bits
        wasted = bits & self.pending
        if wasted:
            self._flag("safety", "C2", wasted, node,
                       "produced element destroyed before any consumption")
        self.avail &= ~bits
        self.pending &= ~bits

    def finish(self, last_node):
        if self.open:
            self._flag("balance", "C1", self.open, last_node,
                       "EAGER production never completed by a LAZY production")
        if self.pending:
            self._flag("safety", "C2", self.pending, last_node,
                       "produced element never consumed "
                       "(expected on zero-trip paths when hoisting is enabled)")
