"""Seeded source-level edits for incremental-compile testing.

The incremental layer (``docs/scaling.md``) promises that a
``compile_delta`` of an edited program is *byte-identical* to a cold
compile of the same text while re-solving only the intervals the edit
touched.  Exercising that promise needs a stream of realistic edits over
the generator corpus; :class:`EditModel` produces them, seeded and
deterministic:

* ``scalar_rhs`` — bump the trailing constant addend of an assignment
  (``xb(3) = xb(3) + 1`` → ``+ 8``): the statement text changes but no
  array reference does, so the solver *problems* are unchanged — the
  edit every whole-interval memo hit should survive;
* ``subscript`` — change a constant subscript of a distributed array
  (``xa(3)`` → ``xa(7)``): the problem in the enclosing interval
  changes, forcing a re-solve there;
* ``insert`` — add a fresh opaque assignment after a random statement:
  the flow graph grows a node, so whole-interval keys miss and the
  untouched intervals splice back as fragments;
* ``delete`` — remove a generated scalar load (``v5 = xa(i)``):
  structure *and* problem change together.

Every edit is validated by re-analyzing the edited text; an edit that
would break the program (e.g. deleting the only statement of a branch)
is discarded and another candidate drawn.  All choices come from the
seeded :class:`random.Random`, so an edit sequence is reproducible from
``(corpus seed, edit seed)`` alone.
"""

import random
import re

from repro.testing.programs import analyze_source

#: The distributed arrays of the generator corpus
#: (:class:`~repro.testing.generator.ArrayProgramGenerator`); only
#: their references carry communication, so only their edits change
#: solver problems.
DISTRIBUTED_ARRAYS = ("xa", "xb")

_TRAILING_ADDEND = re.compile(r" \+ (\d+)$")
_SCALAR_LOAD = re.compile(r"^ *v\d+ = ")
_ASSIGNMENT = re.compile(r"^( *)\w[\w(), +]* = ")
_LABELLED = re.compile(r"^ *\d+ ")

EDIT_KINDS = ("scalar_rhs", "subscript", "insert", "delete")


class EditModel:
    """Draw seeded, validated edits over formatted mini-Fortran text."""

    def __init__(self, seed=0):
        self.rng = random.Random(seed)
        self._fresh = 0

    # -- candidates -------------------------------------------------------

    def _valid(self, lines):
        text = "\n".join(lines) + "\n"
        try:
            analyze_source(text)
        except Exception:
            return None
        return text

    def _try_candidates(self, lines, candidates, apply):
        """Apply ``apply`` to candidates in random order until one
        survives re-analysis; return the edited text or ``None``."""
        self.rng.shuffle(candidates)
        for candidate in candidates:
            edited = apply(list(lines), candidate)
            if edited is None:
                continue
            text = self._valid(edited)
            if text is not None:
                return text
        return None

    # -- edit kinds -------------------------------------------------------

    def scalar_rhs(self, text):
        """Bump a trailing ``+ <int>`` addend (problem-preserving)."""
        lines = text.splitlines()
        candidates = [i for i, line in enumerate(lines)
                      if _TRAILING_ADDEND.search(line)]

        def apply(edited, index):
            match = _TRAILING_ADDEND.search(edited[index])
            old = int(match.group(1))
            new = self.rng.choice([n for n in range(1, 10) if n != old])
            edited[index] = _TRAILING_ADDEND.sub(f" + {new}", edited[index])
            return edited

        return self._try_candidates(lines, candidates, apply)

    def subscript(self, text):
        """Change a constant subscript of a distributed array
        (problem-changing)."""
        pattern = re.compile(
            r"\b(%s)\((\d+)\)" % "|".join(DISTRIBUTED_ARRAYS))
        lines = text.splitlines()
        candidates = [i for i, line in enumerate(lines)
                      if pattern.search(line)]

        def apply(edited, index):
            match = pattern.search(edited[index])
            old = int(match.group(2))
            new = self.rng.choice([n for n in range(1, 10) if n != old])
            edited[index] = (edited[index][:match.start(2)] + str(new)
                             + edited[index][match.end(2):])
            return edited

        return self._try_candidates(lines, candidates, apply)

    def insert(self, text):
        """Insert a fresh opaque assignment (structure-changing)."""
        lines = text.splitlines()
        candidates = [i for i, line in enumerate(lines)
                      if _ASSIGNMENT.match(line)
                      and not _LABELLED.match(line)]

        def apply(edited, index):
            indent = _ASSIGNMENT.match(edited[index]).group(1)
            self._fresh += 1
            edited.insert(index + 1, f"{indent}q{self._fresh} = ...")
            return edited

        return self._try_candidates(lines, candidates, apply)

    def delete(self, text):
        """Delete a generated scalar load (structure- and
        problem-changing)."""
        lines = text.splitlines()
        candidates = [i for i, line in enumerate(lines)
                      if _SCALAR_LOAD.match(line)
                      and not _LABELLED.match(line)]

        def apply(edited, index):
            del edited[index]
            return edited

        return self._try_candidates(lines, candidates, apply)

    # -- sequences --------------------------------------------------------

    def random_edit(self, text, kinds=EDIT_KINDS):
        """One applicable edit of a random kind; returns ``(kind,
        edited_text)``.  Raises :class:`ValueError` when no kind
        applies (practically impossible on generator programs)."""
        order = list(kinds)
        self.rng.shuffle(order)
        for kind in order:
            edited = getattr(self, kind)(text)
            if edited is not None and edited != text:
                return kind, edited
        raise ValueError("no edit kind applies to this program")

    def edit_sequence(self, text, n, kinds=EDIT_KINDS):
        """``n`` cumulative edits; yields ``(kind, edited_text)`` with
        each edit applied on top of the previous one."""
        current = text
        for _ in range(n):
            kind, current = self.random_edit(current, kinds=kinds)
            yield kind, current
