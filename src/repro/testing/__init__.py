"""Workload builders shared by the test suite, examples, and benchmarks.

* :mod:`repro.testing.programs` — the paper's example programs (Figures
  1, 3, 11) and small canonical shapes, with helpers to look nodes up by
  preorder number or statement text.
* :mod:`repro.testing.graphs` — hand-built CFGs for the criteria figures
  (4–10, 16) that are given as flow graphs rather than programs.
* :mod:`repro.testing.generator` — seeded random structured programs and
  random GIVE-N-TAKE problems over them, used for property-based testing
  and the linear-scaling benchmark.
"""

from repro.testing.programs import (
    FIG1_SOURCE,
    FIG3_SOURCE,
    FIG11_SOURCE,
    AnalyzedProgram,
    analyze_source,
)
from repro.testing.graphs import GraphSketch
from repro.testing.generator import (
    ProgramGenerator,
    random_analyzed_program,
    random_problem,
)

__all__ = [
    "FIG1_SOURCE",
    "FIG3_SOURCE",
    "FIG11_SOURCE",
    "AnalyzedProgram",
    "analyze_source",
    "GraphSketch",
    "ProgramGenerator",
    "random_analyzed_program",
    "random_problem",
]
