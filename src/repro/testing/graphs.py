"""Hand-built control flow graphs.

The paper's criteria figures (4–10) and the jump-into-loop example
(Figure 16) are given as flow graphs, not programs.  :class:`GraphSketch`
builds such graphs from an edge list, normalizes them, and exposes nodes
by the sketch's own names.
"""

from repro.graph.cfg import ControlFlowGraph, NodeKind
from repro.graph.interval_graph import IntervalFlowGraph
from repro.graph.normalize import normalize


class GraphSketch:
    """Build a CFG from named nodes and an edge list.

    >>> sketch = GraphSketch(["a", "b", "c"], [("a", "b"), ("b", "c"), ("b", "b2")])
    creates nodes on first mention; ``entry`` is the first node, ``exit``
    the designated (or last) node.
    """

    def __init__(self, edges, exit_name=None, normalize_graph=True):
        self.cfg = ControlFlowGraph()
        self._by_name = {}
        for src_name, dst_name in edges:
            src = self._node(src_name)
            dst = self._node(dst_name)
            self.cfg.add_edge(src, dst)
        names = list(self._by_name)
        self.cfg.entry = self._by_name[names[0]]
        self.cfg.exit = self._by_name[exit_name if exit_name else names[-1]]
        if normalize_graph:
            normalize(self.cfg)
        self.ifg = IntervalFlowGraph(self.cfg)

    def _node(self, name):
        if name not in self._by_name:
            self._by_name[name] = self.cfg.new_node(NodeKind.STMT, name=name)
        return self._by_name[name]

    def __getitem__(self, name):
        """The (original, pre-normalization) node called ``name``."""
        return self._by_name[name]

    def names(self):
        return list(self._by_name)


def diamond():
    """entry → branch → (left | right) → join → exit."""
    return GraphSketch([
        ("entry", "branch"),
        ("branch", "left"),
        ("branch", "right"),
        ("left", "join"),
        ("right", "join"),
        ("join", "exit"),
    ])


def simple_loop():
    """entry → header ⇄ body, header → exit."""
    return GraphSketch([
        ("entry", "header"),
        ("header", "body"),
        ("body", "header"),
        ("header", "exit"),
    ])


def nested_loops():
    """A doubly nested loop."""
    return GraphSketch([
        ("entry", "outer"),
        ("outer", "pre"),
        ("pre", "inner"),
        ("inner", "body"),
        ("body", "inner"),
        ("inner", "post"),
        ("post", "outer"),
        ("outer", "exit"),
    ])


def loop_with_jump():
    """A loop containing a conditional jump past the post-loop code —
    the shape of Figures 11/16."""
    return GraphSketch([
        ("entry", "header"),
        ("header", "work"),
        ("work", "test"),
        ("test", "latch"),
        ("latch", "header"),
        ("test", "landing"),     # the jump out of the loop
        ("header", "post"),
        ("post", "target"),
        ("landing", "target"),
        ("target", "exit"),
    ])
