"""Seeded random structured programs and random GIVE-N-TAKE problems.

The generator produces mini-Fortran ASTs with nested ``do`` loops,
``if/else`` branches, and optional ``if … goto`` jumps out of loops
(always forward and outward, so the graphs stay reducible, like the
paper's Figure 11).  Used by the hypothesis property tests (the checker
is the oracle) and by the linear-complexity benchmark.
"""

import random

from repro.lang import ast
from repro.core.problem import Direction, Problem
from repro.testing.programs import AnalyzedProgram


class ProgramGenerator:
    """Deterministic random program factory."""

    def __init__(self, seed=0, max_depth=3, goto_probability=0.3):
        self.rng = random.Random(seed)
        self.max_depth = max_depth
        self.goto_probability = goto_probability
        self._counter = 0
        self._label = 100

    def program(self, size=12):
        """A random program with roughly ``size`` executable statements."""
        self._counter = 0
        budget = [size]
        body = self._body(budget, depth=0)
        if not body:
            body = [self._assign()]
        self._inject_gotos(body, continuations=[])
        return ast.Program(body)

    # -- structure ----------------------------------------------------------

    def _body(self, budget, depth):
        statements = []
        if depth == 0:
            # The top level absorbs whatever budget nesting left over, so
            # the requested program size is actually reached.
            while budget[0] > 0:
                statements.append(self._statement(budget, depth))
        else:
            length = self.rng.randint(1, 3)
            for _ in range(length):
                if budget[0] <= 0:
                    break
                statements.append(self._statement(budget, depth))
        return statements

    def _statement(self, budget, depth):
        budget[0] -= 1
        roll = self.rng.random()
        if depth < self.max_depth and roll < 0.25:
            return ast.Do(
                f"i{self._next()}", ast.Num(1), ast.Var("n"), ast.Num(1),
                self._body(budget, depth + 1),
            )
        if depth < self.max_depth and roll < 0.45:
            then_body = self._body(budget, depth + 1)
            else_body = self._body(budget, depth + 1) if self.rng.random() < 0.5 else []
            return ast.If(ast.Var(f"t{self._next()}"), then_body, else_body)
        return self._assign()

    def _assign(self):
        return ast.Assign(ast.Var(f"v{self._next()}"), ast.Opaque())

    def _next(self):
        self._counter += 1
        return self._counter

    # -- jumps out of loops ---------------------------------------------------

    def _inject_gotos(self, body, continuations):
        """Give some loops an ``if … goto`` to a statement that appears
        after them in an enclosing body (a forward jump out of the loop)."""
        for index, stmt in enumerate(body):
            following = body[index + 1:] + continuations
            if isinstance(stmt, ast.Do):
                if following and stmt.body and self.rng.random() < self.goto_probability:
                    target = self.rng.choice(following)
                    if target.label is None:
                        target.label = self._label
                        self._label += 1
                    position = self.rng.randrange(len(stmt.body) + 1)
                    stmt.body.insert(
                        position,
                        ast.IfGoto(ast.Var(f"t{self._next()}"), target.label),
                    )
                self._inject_gotos(stmt.body, following)
            elif isinstance(stmt, ast.If):
                self._inject_gotos(stmt.then_body, following)
                self._inject_gotos(stmt.else_body, following)


def random_analyzed_program(seed, size=12, max_depth=3, goto_probability=0.3):
    """Generate and analyze a random program."""
    generator = ProgramGenerator(seed, max_depth, goto_probability)
    return AnalyzedProgram(generator.program(size))


class ArrayProgramGenerator(ProgramGenerator):
    """Random programs with real array traffic, for fuzzing the full
    communication/prefetch/register pipelines.

    Declares a few arrays (some distributed, one indirection array) and
    makes assignments read/define them with the subscript shapes the
    analyses support: constants, loop-affine (``x(i + 2)``), and
    indirect (``x(a(i))``).
    """

    ARRAYS = ("xa", "xb", "xc")

    def __init__(self, seed=0, max_depth=3, goto_probability=0.2,
                 distributed=("xa", "xb")):
        super().__init__(seed, max_depth, goto_probability)
        self.distributed = distributed
        self._loop_vars = []

    def program(self, size=12):
        self._counter = 0
        self._loop_vars = []
        budget = [size]
        body = self._body(budget, depth=0)
        if not body:
            body = [self._assign()]
        self._inject_gotos(body, continuations=[])
        declarations = [
            ast.Declaration("real", name, ast.Num(1000)) for name in self.ARRAYS
        ]
        declarations.append(ast.Declaration("integer", "ind", ast.Num(1000)))
        declarations.extend(
            ast.Distribute(name, "block") for name in self.distributed
        )
        return ast.Program(declarations + body)

    def _statement(self, budget, depth):
        budget[0] -= 1
        roll = self.rng.random()
        if depth < self.max_depth and roll < 0.3:
            var = f"i{self._next()}"
            self._loop_vars.append(var)
            loop = ast.Do(var, ast.Num(1), ast.Var("n"), ast.Num(1),
                          self._body(budget, depth + 1))
            self._loop_vars.pop()
            return loop
        if depth < self.max_depth and roll < 0.45:
            then_body = self._body(budget, depth + 1)
            else_body = self._body(budget, depth + 1) if self.rng.random() < 0.5 else []
            return ast.If(ast.Var(f"t{self._next()}"), then_body, else_body)
        return self._array_statement()

    def _array_statement(self):
        roll = self.rng.random()
        if roll < 0.45:  # read into a scalar
            return ast.Assign(ast.Var(f"v{self._next()}"), self._array_ref())
        if roll < 0.75:  # plain definition
            return ast.Assign(self._array_ref(), ast.Opaque())
        target = self._array_ref()  # reduction
        return ast.Assign(target, ast.BinOp("+", target, ast.Num(1)))

    def _array_ref(self):
        array = self.rng.choice(self.ARRAYS)
        roll = self.rng.random()
        if roll < 0.25 or not self._loop_vars:
            return ast.ArrayRef(array, (ast.Num(self.rng.randint(1, 9)),))
        var = ast.Var(self.rng.choice(self._loop_vars))
        if roll < 0.6:
            offset = self.rng.randint(0, 3)
            subscript = var if offset == 0 else ast.BinOp("+", var, ast.Num(offset))
            return ast.ArrayRef(array, (subscript,))
        if roll < 0.8 and len(self._loop_vars) >= 2:
            first = ast.Var(self._loop_vars[-2])
            return ast.ArrayRef(array, (first, var))  # 2-D reference
        return ast.ArrayRef(array, (ast.ArrayRef("ind", (var,)),))


def random_array_program(seed, size=12, max_depth=3, goto_probability=0.2):
    """Generate and analyze a random program with array traffic."""
    generator = ArrayProgramGenerator(seed, max_depth, goto_probability)
    return AnalyzedProgram(generator.program(size))


def wide_analyzed_program(seed, loops=70, body=70):
    """A *wide, shallow* program: ``loops`` independent top-level DO
    loops of ``body`` straight-line statements each, separated by one
    scalar statement.

    The random generator produces narrow programs whose dependency
    depth grows with program length — every solver necessarily
    serializes on them.  This shape instead keeps the interval tree two
    levels deep, so the S1/S2 dependency structure stays wide: whole
    loop bodies are mutually independent, which is the regime the
    vector backend's level batching is built for (and the shape of real
    numerical codes: many independent loop nests).  ``seed`` only
    varies the problem generated *on* the program; the structure is
    deterministic in ``(loops, body)``.
    """
    del seed  # structure is deterministic; kept for API symmetry
    counter = 0
    statements = []
    for _ in range(loops):
        inner = []
        for _ in range(body):
            counter += 1
            inner.append(ast.Assign(ast.Var(f"v{counter}"), ast.Opaque()))
        counter += 1
        statements.append(ast.Do(f"i{counter}", ast.Num(1), ast.Var("n"),
                                 ast.Num(1), inner))
        counter += 1
        statements.append(ast.Assign(ast.Var(f"v{counter}"), ast.Opaque()))
    return AnalyzedProgram(ast.Program(statements))


def random_problem(analyzed, seed=0, n_elements=3, direction=Direction.BEFORE,
                   take_probability=0.3, steal_probability=0.15,
                   give_probability=0.1):
    """A random GIVE-N-TAKE problem over ``analyzed``'s statement nodes.

    Every element gets at least one consumer so the instance is never
    vacuous.
    """
    from repro.graph.cfg import NodeKind

    rng = random.Random(seed)
    problem = Problem(direction=direction)
    stmt_nodes = [n for n in analyzed.ifg.real_nodes() if n.kind is NodeKind.STMT]
    if not stmt_nodes:
        return problem
    for e in range(n_elements):
        element = f"e{e}"
        consumers = [n for n in stmt_nodes if rng.random() < take_probability]
        if not consumers:
            consumers = [rng.choice(stmt_nodes)]
        for node in consumers:
            problem.add_take(node, element)
        for node in stmt_nodes:
            if rng.random() < steal_probability:
                problem.add_steal(node, element)
            if rng.random() < give_probability:
                problem.add_give(node, element)
    return problem
