"""The paper's example programs and lookup helpers."""

from repro.lang.parser import parse
from repro.graph.builder import build_cfg
from repro.graph.normalize import normalize
from repro.graph.interval_graph import IntervalFlowGraph
from repro.graph.traversal import preorder_numbering

#: Figure 1 — the READ placement motivating example.  ``x`` is
#: distributed; the ``k`` and ``l`` loops reference ``x(a(...))``.
FIG1_SOURCE = """
real x(100)
real y(100)
real z(100)
integer a(100)
distribute x(block)
    do i = 1, n
        y(i) = ...
    enddo
    if test then
        do j = 1, n
            z(j) = ...
        enddo
        do k = 1, n
            ... = x(a(k))
        enddo
    else
        do l = 1, n
            ... = x(a(l))
        enddo
    endif
"""

#: Figure 3 — local definitions of potentially non-owned data (WRITE
#: placement plus give-for-free for the later READs).
FIG3_SOURCE = """
real x(100)
integer a(100)
distribute x(block)
    if test then
        do i = 1, n
            x(a(i)) = ...
        enddo
        do j = 1, n
            ... = x(j + 5)
        enddo
    endif
    do k = 1, n
        ... = x(k + 5)
    enddo
"""

#: Figure 11 — the running example whose interval flow graph is Figure 12
#: and whose annotated form is Figure 14.
FIG11_SOURCE = """
real x(100)
real y(100)
integer a(100)
integer b(100)
distribute x(block)
distribute y(block)
    do i = 1, n
        y(a(i)) = ...
        if test(i) goto 77
    enddo
    do j = 1, n
        ... = ...
    enddo
77  do k = 1, n
        ... = x(k + 10) + y(b(k))
    enddo
"""


class AnalyzedProgram:
    """A parsed program with its normalized interval flow graph and the
    paper-style preorder numbering.

    ``split_irreducible=True`` repairs jumps into loops by node
    splitting instead of rejecting them (§3.3, [CM69]);
    ``max_splits`` bounds the duplication budget."""

    def __init__(self, program, split_irreducible=False, max_splits=None):
        self.program = program
        self.cfg = build_cfg(program)
        normalize(self.cfg, split_irreducible=split_irreducible,
                  max_splits=max_splits)
        self.ifg = IntervalFlowGraph(self.cfg)
        self.numbering = preorder_numbering(self.ifg)
        self.by_number = {number: node for node, number in self.numbering.items()}

    def node(self, number):
        """The real node with the given preorder number."""
        return self.by_number[number]

    def number(self, node):
        return self.numbering[node]

    def node_named(self, prefix):
        """The unique node whose name starts with ``prefix``."""
        matches = [n for n in self.ifg.real_nodes() if n.name.startswith(prefix)]
        if len(matches) != 1:
            raise LookupError(f"{len(matches)} nodes named {prefix!r}: {matches}")
        return matches[0]

    def numbers(self, nodes):
        """Sorted preorder numbers of an iterable of nodes (ROOT dropped)."""
        return sorted(
            self.numbering[n] for n in nodes if n is not self.ifg.root
        )


def analyze_source(source):
    """Parse and analyze mini-Fortran source text."""
    return AnalyzedProgram(parse(source))
