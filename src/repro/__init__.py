"""GIVE-N-TAKE — a balanced code placement framework.

Reproduction of Reinhard von Hanxleden and Ken Kennedy, *GIVE-N-TAKE — A
Balanced Code Placement Framework*, PLDI 1994.

Public API overview
===================

Core framework (the paper's contribution)::

    from repro import Problem, Direction, Timing, solve, Placement

    analyzed = analyze_source(source)          # mini-Fortran -> interval graph
    problem = Problem(direction=Direction.BEFORE)
    problem.add_take(node, "element")          # consumption
    problem.add_steal(node, "element")         # destruction
    problem.add_give(node, "element")          # free production
    solution = solve(analyzed.ifg, problem)    # the GiveNTake algorithm
    placement = Placement(analyzed.ifg, problem, solution)
    placement.productions()                    # EAGER + LAZY production sites

Communication generation (the paper's driving application)::

    from repro import generate_communication
    result = generate_communication(source)    # READs + WRITEs, Figure 14 style
    print(result.annotated_source())

Validation and measurement::

    from repro import check_placement          # C1/C2/C3/O1 path replay
    from repro import simulate, MachineModel   # message/latency simulator

Overlap scheduling (EAGER/LAZY slack turned into makespan wins)::

    from repro import build_task_graph, overlap_schedule, compare_schedules
    comparison = compare_schedules(result.annotated_program,
                                   MachineModel(latency=400.0), {"n": 64})
    print(comparison.summary())                # docs/scheduling.md
"""

from repro.core import (
    Direction,
    Placement,
    Problem,
    Solution,
    Timing,
    Universe,
    check_placement,
    enumerate_paths,
    extract_regions,
    limit_production_span,
    measure_spans,
    region_summary,
    shift_synthetic_productions,
    solve,
)
from repro.graph import (
    IntervalFlowGraph,
    build_cfg,
    interval_graph_for_program,
    normalize,
)
from repro.lang import format_program, parse
from repro.testing.programs import AnalyzedProgram, analyze_source
from repro.commgen import (
    HardenedPipeline,
    ResourceBudget,
    generate_communication,
    harden_communication,
    naive_communication,
)
from repro.batch import (
    BatchOptions,
    BatchResult,
    PipelineCache,
    compile_many,
    compile_one,
    resolve_jobs,
)
from repro.service import (
    CompileService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ThreadedServer,
)
from repro.fleet import (
    ChaosPlan,
    FleetConfig,
    FleetRouter,
    LocalFleet,
)
from repro.machine import (
    ConditionPolicy,
    FaultPlan,
    MachineModel,
    RetryPolicy,
    simulate,
)
from repro.obs import (
    NullCollector,
    TraceCollector,
    current_collector,
    profile_source,
    stable_form,
    tracing,
)
from repro.sched import (
    Schedule,
    ScheduleRunner,
    TaskGraph,
    build_task_graph,
    certify_schedule,
    compare_schedules,
    naive_schedule,
    overlap_schedule,
    run_schedule,
)

__version__ = "1.0.0"

__all__ = [
    "Direction",
    "Placement",
    "Problem",
    "Solution",
    "Timing",
    "Universe",
    "check_placement",
    "enumerate_paths",
    "extract_regions",
    "limit_production_span",
    "measure_spans",
    "region_summary",
    "shift_synthetic_productions",
    "solve",
    "IntervalFlowGraph",
    "build_cfg",
    "interval_graph_for_program",
    "normalize",
    "format_program",
    "parse",
    "AnalyzedProgram",
    "analyze_source",
    "generate_communication",
    "naive_communication",
    "HardenedPipeline",
    "ResourceBudget",
    "harden_communication",
    "BatchOptions",
    "BatchResult",
    "PipelineCache",
    "compile_many",
    "compile_one",
    "resolve_jobs",
    "CompileService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ThreadedServer",
    "ChaosPlan",
    "FleetConfig",
    "FleetRouter",
    "LocalFleet",
    "ConditionPolicy",
    "FaultPlan",
    "MachineModel",
    "RetryPolicy",
    "simulate",
    "NullCollector",
    "TraceCollector",
    "current_collector",
    "profile_source",
    "stable_form",
    "tracing",
    "Schedule",
    "ScheduleRunner",
    "TaskGraph",
    "build_task_graph",
    "certify_schedule",
    "compare_schedules",
    "naive_schedule",
    "overlap_schedule",
    "run_schedule",
    "__version__",
]
