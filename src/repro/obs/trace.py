"""Trace serialization: JSON payloads, stable forms, human rendering.

A *trace payload* is the JSON-ready dict built from one
:class:`~repro.obs.collector.TraceCollector`::

    {
      "schema": "repro-trace/1",
      "events":   [ {"category": ..., "name": ..., ...}, ... ],
      "counters": { "equation_evaluations": {"1": 24, ...}, ... },
    }

All content is deterministic for a given input except fields whose name
ends in ``_s`` (wall-clock durations); :func:`stable_form` strips those,
so two traces of the same run compare equal with plain ``==``.
"""

import json

from repro.obs.collector import TIMING_SUFFIX

SCHEMA = "repro-trace/1"


def trace_payload(collector):
    """The JSON-ready dict for one collector's recordings.

    Counter keys are stringified (JSON objects only have string keys)
    so that a dumped-and-reloaded payload equals the original.
    """
    return {
        "schema": SCHEMA,
        "events": [dict(event) for event in collector.events()],
        "counters": {
            counter: {str(key): n for key, n in bucket.items()}
            for counter, bucket in collector.counters().items()
        },
    }


def stable_form(payload):
    """The payload with every wall-clock (``*_s``) field removed.

    Two runs of the same input must produce equal stable forms — the
    determinism contract the observability tests pin down.
    """
    if isinstance(payload, dict):
        return {
            key: stable_form(value)
            for key, value in payload.items()
            if not (isinstance(key, str) and key.endswith(TIMING_SUFFIX))
        }
    if isinstance(payload, list):
        return [stable_form(item) for item in payload]
    return payload


def to_json(payload):
    """Canonical JSON text (sorted keys, trailing newline)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def format_event(event):
    """One event as a single aligned text line."""
    fields = " ".join(
        f"{key}={_render(value)}"
        for key, value in event.items()
        if key not in ("category", "name")
    )
    return f"{event['category']:8} {event['name']:18} {fields}".rstrip()


def _render(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, dict):
        return "{" + ",".join(f"{k}:{_render(v)}" for k, v in value.items()) + "}"
    return str(value)
