"""Structured tracing, counters, and profiling (``docs/observability.md``).

The subsystem has three layers:

* :mod:`repro.obs.collector` — the collector protocol: a zero-cost
  :class:`NullCollector` default and a recording
  :class:`TraceCollector`, activated with :func:`tracing`;
* :mod:`repro.obs.trace` — JSON payloads, the deterministic
  :func:`stable_form`, human rendering;
* :mod:`repro.obs.profile` / :mod:`repro.obs.bench` — end-to-end
  profiling (``repro profile``, ``--trace``) and the ``BENCH_*.json``
  artifacts;
* :mod:`repro.obs.histogram` — O(1)-memory latency percentiles for the
  long-running compile service (``docs/serving.md``).
"""

from repro.obs.collector import (
    NULL,
    NullCollector,
    TraceCollector,
    current_collector,
    set_collector,
    tracing,
)
from repro.obs.histogram import LatencyHistogram
from repro.obs.profile import (
    build_profile,
    format_profile,
    profile_source,
    run_satisfies_each_equation_once,
    summarize,
)
from repro.obs.trace import stable_form, to_json, trace_payload

__all__ = [
    "NULL",
    "NullCollector",
    "LatencyHistogram",
    "TraceCollector",
    "current_collector",
    "set_collector",
    "tracing",
    "build_profile",
    "format_profile",
    "profile_source",
    "run_satisfies_each_equation_once",
    "summarize",
    "stable_form",
    "to_json",
    "trace_payload",
]
