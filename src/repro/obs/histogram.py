"""Streaming latency histograms: p50/p99 without storing samples.

The compile service (:mod:`repro.service`) reports per-phase latency
percentiles live through its ``status`` request, so the recorder has to
be O(1) per observation and O(1) memory no matter how long the server
stays up.  :class:`LatencyHistogram` buckets observations geometrically:
bucket upper bounds grow by a fixed ``base`` factor, so any reported
percentile is within one bucket ratio of the true sample percentile
(±~19% with the default ``base = 2**0.25``) — plenty for operational
dashboards, and exact aggregates (count, sum, min, max) ride along.

All values are wall-clock seconds; snapshot field names carry the
``_s`` suffix like every other timing field in :mod:`repro.obs`.
"""

import math
from bisect import bisect_left

#: Percentiles every snapshot reports (the service metrics glossary in
#: ``docs/serving.md`` documents these).
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99)


class LatencyHistogram:
    """Fixed geometric buckets over ``[minimum, minimum * base**buckets)``.

    Observations below ``minimum`` land in the first bucket, anything
    beyond the last bound in an overflow bucket whose reported value is
    clamped to the observed maximum.  The defaults span 10 microseconds
    to about 40 minutes in ~19% steps.
    """

    def __init__(self, minimum=1e-5, base=2 ** 0.25, buckets=112):
        if minimum <= 0 or base <= 1 or buckets < 1:
            raise ValueError("need minimum > 0, base > 1, buckets >= 1")
        self.minimum = minimum
        self.base = base
        self._bounds = [minimum * base ** i for i in range(buckets)]
        self._counts = [0] * (buckets + 1)  # +1 = overflow bucket
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = 0.0

    def record(self, value):
        """Observe one duration (seconds; negatives clamp to zero)."""
        value = max(0.0, float(value))
        self._counts[bisect_left(self._bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, q):
        """The ``q``-quantile (``0 < q <= 1``): the geometric midpoint of
        the bucket holding that rank, clamped to the observed range."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                low = self._bounds[index - 1] if index > 0 else 0.0
                high = (self._bounds[index] if index < len(self._bounds)
                        else self.max_value)
                value = math.sqrt(low * high) if low > 0 else high / 2.0
                return min(max(value, self.min_value), self.max_value)
        return self.max_value  # pragma: no cover (seen always reaches count)

    def snapshot(self):
        """JSON-ready summary: count, mean/min/max, and the standard
        percentiles (:data:`SNAPSHOT_QUANTILES`)."""
        summary = {
            "count": self.count,
            "mean_s": self.mean,
            "min_s": self.min_value if self.count else 0.0,
            "max_s": self.max_value,
        }
        for q in SNAPSHOT_QUANTILES:
            summary[f"p{int(q * 100)}_s"] = self.percentile(q)
        return summary
