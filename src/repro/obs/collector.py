"""The tracing collector protocol and its two implementations.

Instrumented code (the solver, the graph passes, the hardened pipeline,
the machine executor) reports to whatever collector is *active*:

* :class:`NullCollector` — the default.  Every method is a no-op and
  ``enabled`` is False, so hot paths guard their bookkeeping with a
  single attribute test and pay nothing when tracing is off (verified
  by the scaling benchmark, which runs untraced).
* :class:`TraceCollector` — records a structured event stream plus
  monotonic counters.  Event *content* is deterministic for a given
  input; only fields whose name ends in ``_s`` carry wall-clock
  durations (see :mod:`repro.obs.trace` for the stable form).

The active collector is installed with :func:`tracing`::

    with tracing() as collector:
        solve(ifg, problem)
    collector.counters()["equation_evaluations"]   # {1: 12, 2: 12, ...}

Long-lived objects (a :class:`~repro.core.solver.GiveNTakeSolver`, a
:class:`~repro.machine.executor.Simulator`) capture the collector active
at construction time, so a trace scope must enclose the whole run.
"""

import time
from contextlib import contextmanager

#: Field-name suffix marking wall-clock values (nondeterministic).
TIMING_SUFFIX = "_s"


class NullCollector:
    """The disabled collector: accepts everything, stores nothing."""

    enabled = False

    def event(self, category, name, **fields):
        pass

    def count(self, counter, key=None, n=1):
        pass

    def clock(self):
        return 0.0

    def events(self, category=None, name=None):
        return []

    def counters(self):
        return {}


#: The shared disabled collector (stateless, safe to reuse).
NULL = NullCollector()

_active = NULL


class TraceCollector:
    """Records structured events and counters.

    * :meth:`event` appends one dict to the stream: ``category`` groups
      a subsystem (``"solver"``, ``"graph"``, ``"hardened"``,
      ``"machine"``), ``name`` the event kind, and the keyword fields
      carry the payload.  Events keep insertion order.
    * :meth:`count` bumps ``counters()[counter][key]`` — cheap aggregate
      totals next to the full stream.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._events = []
        self._counters = {}
        self._clock = clock

    def event(self, category, name, **fields):
        record = {"category": category, "name": name}
        record.update(fields)
        self._events.append(record)

    def count(self, counter, key=None, n=1):
        bucket = self._counters.setdefault(counter, {})
        bucket[key] = bucket.get(key, 0) + n

    def clock(self):
        """The wall clock used for ``*_s`` duration fields."""
        return self._clock()

    @contextmanager
    def timer(self, category, name, **fields):
        """Time a block; emits one event with a ``duration_s`` field."""
        start = self._clock()
        try:
            yield
        finally:
            self.event(category, name, duration_s=self._clock() - start,
                       **fields)

    # -- reading -----------------------------------------------------------

    def events(self, category=None, name=None):
        """The event stream, optionally filtered."""
        return [
            event for event in self._events
            if (category is None or event["category"] == category)
            and (name is None or event["name"] == name)
        ]

    def counters(self):
        """Counter totals as ``{counter: {key: n}}`` (a deep copy)."""
        return {counter: dict(bucket)
                for counter, bucket in self._counters.items()}


def current_collector():
    """The collector instrumented code should report to."""
    return _active


def set_collector(collector):
    """Install ``collector`` (None restores the disabled default)."""
    global _active
    _active = collector if collector is not None else NULL


@contextmanager
def tracing(collector=None):
    """Activate a collector for the duration of the block.

    With no argument a fresh :class:`TraceCollector` is created (and
    yielded); pass an explicit collector — including a
    :class:`NullCollector` — to control what is recorded.  The previous
    collector is restored on exit, so scopes nest.
    """
    if collector is None:
        collector = TraceCollector()
    previous = _active
    set_collector(collector)
    try:
        yield collector
    finally:
        set_collector(previous)
