"""End-to-end profiling: run the pipeline under tracing, summarize.

:func:`profile_source` compiles a program (optionally through the
hardened pipeline, optionally simulating the result) inside a
:func:`~repro.obs.collector.tracing` scope and returns the trace payload
extended with a ``summary`` section:

* per-solver-run equation-evaluation counts and the §5.2
  *each-equation-once* verdict (every equation exactly once per node
  per sweep, S3/S4 once per node per timing);
* sweep and fixpoint-round totals;
* interval-construction statistics and node-split counts;
* the hardened pipeline's rung decisions and budget consumption;
* the machine executor's message/fault/retry timeline totals.

This is what ``repro profile`` and the ``--trace`` flags print.
"""

from repro.obs.collector import tracing
from repro.obs.trace import format_event, trace_payload

#: Expected evaluations per node for one solver run: S1 (Eqs 1-8) and
#: S2 (Eqs 9-10) scale with the number of consumption sweeps; S3/S4
#: (Eqs 11-15) run exactly once per node per timing (EAGER and LAZY).
_S1 = tuple(range(1, 9))
_S2 = (9, 10)
_S3_S4 = tuple(range(11, 16))


def run_satisfies_each_equation_once(run):
    """Whether one ``solver/run`` event's counts match the §5.2 bound.

    ``nodes`` includes ROOT; S2 skips ROOT (it is nobody's child), and
    a backward fixpoint with ``k`` sweeps evaluates S1/S2 ``k`` times —
    still exactly once per node *per sweep*, which is the invariant the
    elimination order guarantees.

    Planned-backend runs (recognized by their ``sparse_evaluations``
    field) replace the re-sweeps with sparse worklist rounds, so their
    exact S1/S2 totals are ``nodes * full_sweeps`` plus the reported
    bundle/child re-evaluations — and each equation is still evaluated
    *at most* once per node per round, which keeps the dense per-sweep
    totals as an upper bound (the sparse counts can only be lower).
    """
    nodes = run["nodes"]
    sweeps = run["consumption_sweeps"]
    counts = run["equation_evaluations"]

    def observed(number):
        return counts.get(str(number), counts.get(number, 0))

    sparse = run.get("sparse_evaluations")
    if sparse is not None:
        full = run["full_sweeps"]
        rounds = run["sparse_rounds"]
        expected_s1 = nodes * full + sparse["bundles"]
        expected_s2 = (nodes - 1) * full + sparse["children"]
        within_round_bound = (
            sparse["bundles"] <= nodes * rounds
            and sparse["children"] <= (nodes - 1) * rounds
            and full + rounds == sweeps
        )
    else:
        expected_s1 = nodes * sweeps
        expected_s2 = (nodes - 1) * sweeps
        within_round_bound = True

    return (
        within_round_bound
        and all(observed(n) == expected_s1 for n in _S1)
        and all(observed(n) == expected_s2 for n in _S2)
        and all(observed(n) == nodes * 2 for n in _S3_S4)
    )


def summarize(payload):
    """The ``summary`` section for a trace payload (pure function)."""
    events = payload["events"]
    counters = payload["counters"]

    def select(category, name=None):
        return [e for e in events if e["category"] == category
                and (name is None or e["name"] == name)]

    solver_runs = select("solver", "run")
    summary = {
        "solver_runs": [
            {key: value for key, value in run.items()
             if key not in ("category", "name")}
            for run in solver_runs
        ],
        "each_equation_once": (
            all(run_satisfies_each_equation_once(run) for run in solver_runs)
            if solver_runs else None
        ),
        "equation_evaluations": counters.get("equation_evaluations", {}),
        "sweeps": counters.get("sweeps", {}),
    }

    graph = {}
    for event in select("graph", "normalize"):
        graph["normalize"] = {k: v for k, v in event.items()
                              if k not in ("category", "name")}
    for event in select("graph", "interval_graph"):
        graph["interval_graph"] = {k: v for k, v in event.items()
                                   if k not in ("category", "name")}
    node_splits = select("graph", "node_split")
    if node_splits:
        graph["node_splits"] = len(node_splits)
    if graph:
        summary["graph"] = graph

    rungs = select("hardened", "rung_attempt")
    outcome = select("hardened", "result")
    if rungs or outcome:
        summary["hardened"] = {
            "attempts": [
                {k: v for k, v in e.items() if k not in ("category", "name")}
                for e in rungs
            ],
            "result": (
                {k: v for k, v in outcome[-1].items()
                 if k not in ("category", "name")}
                if outcome else None
            ),
            "paths_checked": counters.get("hardened", {}).get(
                "paths_checked", 0),
        }

    machine_events = select("machine")
    if machine_events:
        timeline = {}
        for event in machine_events:
            timeline[event["name"]] = timeline.get(event["name"], 0) + 1
        summary["machine"] = {"timeline_counts": timeline,
                              "timeline_events": len(machine_events)}
    return summary


def build_profile(collector, extra=None):
    """Trace payload + summary (+ caller-provided ``extra`` entries)."""
    payload = trace_payload(collector)
    payload["summary"] = summarize(payload)
    if extra:
        payload["summary"].update(extra)
    return payload


def profile_source(source, hardened=False, run_simulation=False,
                   bindings=None, machine=None, policy=None, faults=None,
                   retry=None, solver_backend=None):
    """Compile ``source`` under tracing; return the profile payload.

    ``hardened`` routes placement through the
    :class:`~repro.commgen.hardened.HardenedPipeline`;
    ``run_simulation`` additionally executes the annotated program on
    the machine model (``bindings``/``machine``/``policy``/``faults``/
    ``retry`` as for :func:`repro.machine.simulate`) so the message
    timeline lands in the trace; ``solver_backend`` selects the solver
    kernel (``"planned"``/``"reference"``, ``None`` = the solver
    default) so both backends' equation-count profiles can be compared.
    """
    from repro.commgen import HardenedPipeline, generate_communication
    from repro.machine import simulate

    metrics = None
    with tracing() as collector:
        if hardened:
            result = HardenedPipeline(
                solver_backend=solver_backend).run(source)
        else:
            result = generate_communication(
                source, solver_backend=solver_backend)
        if run_simulation:
            metrics = simulate(result.annotated_program, machine,
                               bindings or {"n": 16}, policy,
                               faults=faults, retry=retry)

    extra = {}
    inner = result.result if hardened else result
    if hasattr(inner, "communication_count"):
        reads, writes = inner.communication_count()
        extra["placements"] = {"reads": reads, "writes": writes}
    if metrics is not None:
        extra["machine_metrics"] = {
            "messages": metrics.messages,
            "volume": metrics.volume,
            "total_time": metrics.total_time,
            "exposed_latency": metrics.exposed_latency,
            "hidden_latency": metrics.hidden_latency,
            "retries": metrics.retries,
            "timeouts": metrics.timeouts,
            "dropped_messages": metrics.dropped_messages,
            "wire_busy_time": metrics.wire_busy_time,
            "wire_idle_time": metrics.wire_idle_time,
            "peak_in_flight": metrics.peak_in_flight,
            "overlap_ratio": metrics.overlap_ratio,
        }
    return build_profile(collector, extra)


def format_profile(payload, events=False):
    """Human-readable rendering of a profile payload.

    ``events=True`` appends the full event stream (one line each);
    the default prints the summary only.
    """
    summary = payload.get("summary", {})
    lines = ["# repro profile"]

    graph = summary.get("graph", {})
    if "interval_graph" in graph:
        stats = graph["interval_graph"]
        lines.append("graph: " + " ".join(f"{k}={v}"
                                          for k, v in sorted(stats.items())))
    if "normalize" in graph:
        stats = graph["normalize"]
        lines.append("normalize: "
                     + " ".join(f"{k}={v}" for k, v in sorted(stats.items())))

    for index, run in enumerate(summary.get("solver_runs", []), start=1):
        verdict = "yes" if run_satisfies_each_equation_once(run) else "NO"
        line = (
            f"solver run {index}: backend={run.get('backend', 'reference')} "
            f"direction={run['direction']} "
            f"nodes={run['nodes']} "
            f"consumption_sweeps={run['consumption_sweeps']} "
            f"fixpoint_rounds={run['rounds']} "
            f"converged={run['converged']} each-equation-once={verdict}")
        sparse = run.get("sparse_evaluations")
        if sparse is not None:
            line += (f" sparse_rounds={run['sparse_rounds']} "
                     f"sparse_bundles={sparse['bundles']}")
        lines.append(line)
    once = summary.get("each_equation_once")
    if once is not None:
        lines.append(f"each-equation-once (all runs): "
                     f"{'yes' if once else 'NO'}")

    evaluations = summary.get("equation_evaluations", {})
    if evaluations:
        ordered = sorted(evaluations.items(), key=lambda item: int(item[0]))
        lines.append("equation evaluations: "
                     + " ".join(f"eq{k}={v}" for k, v in ordered))

    if "placements" in summary:
        placements = summary["placements"]
        lines.append(f"placements: reads={placements['reads']} "
                     f"writes={placements['writes']}")

    if "hardened" in summary:
        hardened = summary["hardened"]
        for attempt in hardened["attempts"]:
            state = "ok" if attempt["ok"] else f"failed ({attempt['reason']})"
            lines.append(f"hardened rung {attempt['rung']}: {state}")
        lines.append(f"hardened paths checked: {hardened['paths_checked']}")

    if "machine" in summary:
        timeline = summary["machine"]["timeline_counts"]
        lines.append("machine timeline: "
                     + " ".join(f"{k}={v}" for k, v in sorted(timeline.items())))
    if "machine_metrics" in summary:
        metrics = summary["machine_metrics"]
        lines.append("machine metrics: "
                     + " ".join(f"{k}={v:.2f}" if k.endswith("_ratio")
                                else f"{k}={v:.0f}" if isinstance(v, float)
                                else f"{k}={v}"
                                for k, v in sorted(metrics.items())))

    lines.append(f"events recorded: {len(payload.get('events', []))}")
    if events:
        lines.append("")
        lines.extend(format_event(event) for event in payload["events"])
    return "\n".join(lines) + "\n"
