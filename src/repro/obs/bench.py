"""Machine-readable benchmark artifacts: ``BENCH_solver.json``,
``BENCH_batch.json`` and ``BENCH_kernel.json``.

**Solver scaling** — the paper's §5.2 complexity claim (every equation
evaluated exactly once per node, O(E) total) is asserted by
``benchmarks/test_bench_scaling_linear.py``; this module *measures* it
into an artifact CI uploads on every run, so future PRs have a
trajectory to regress against::

    python -m repro.obs.bench --output BENCH_solver.json --check

For each size on the ladder it records the node count, the best
wall-clock solve (instrumentation disabled — the production fast path),
time per node, and — from one additional traced run — the per-equation
evaluation counts, consumption-sweep count and fixpoint rounds.
``--check`` exits nonzero when time per node grows beyond the same 4x
tolerance the pytest benchmark enforces.

**Batch throughput** — the ``repro.batch`` layer's reason to exist
(``docs/scaling.md``)::

    python -m repro.obs.bench --batch --output BENCH_batch.json --check

compiles a generator corpus three ways — serially with no cache,
parallel with a cold content-addressed cache, and parallel again with
the warm cache — and records programs/second, the warm cache hit rate,
and the speedups between modes.  ``--check`` exits nonzero when the
parallel warm run is no faster than the serial uncached one, or when a
full-hit warm cache fails to beat the cold run (i.e. cache hits give no
speedup).

**Kernel speedup** — the planned solver backend's reason to exist
(``docs/scaling.md``)::

    python -m repro.obs.bench --kernel --output BENCH_kernel.json --check

solves each ladder instance in both directions with the reference and
the planned backend (views prebuilt and plans warmed, so only the solve
phase is timed; median of repeats) and records the per-instance and
overall speedups plus a bit-identity verdict against the reference
solution.  ``--check`` exits nonzero when the planned backend is slower
than the reference anywhere or when any solution differs by a single
bit.

Wall-clock fields end in ``_s`` (speedups are ratios of wall-clock and
carry the suffix too); everything else is deterministic.
"""

import argparse
import json
import sys
import tempfile
import time

from repro.core.solver import solve
from repro.obs.collector import tracing
from repro.obs.profile import run_satisfies_each_equation_once
from repro.testing.generator import random_analyzed_program, random_problem

SCHEMA = "repro-bench-solver/1"
BATCH_SCHEMA = "repro-bench-batch/1"
KERNEL_SCHEMA = "repro-bench-kernel/1"

#: The size ladder — kept in sync with benchmarks/test_bench_scaling_linear.py.
SIZES = (40, 160, 640)

#: Allowed time-per-node growth between consecutive ladder steps (the
#: pytest benchmark's tolerance; generous because small runs are noisy).
TOLERANCE = 4.0


def _build_instance(size, seed, n_elements):
    analyzed = random_analyzed_program(seed, size=size, max_depth=3)
    problem = random_problem(analyzed, seed=seed, n_elements=n_elements)
    return analyzed, problem


def solver_scaling(sizes=SIZES, seed=11, n_elements=8, repeats=3):
    """Measure the ladder; return the ``BENCH_solver.json`` payload."""
    rows = []
    for size in sizes:
        analyzed, problem = _build_instance(size, seed, n_elements)
        nodes = len(analyzed.ifg.real_nodes())
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            solve(analyzed.ifg, problem)
            best = min(best, time.perf_counter() - start)
        with tracing() as collector:
            solve(analyzed.ifg, problem)
        run = collector.events("solver", "run")[-1]
        rows.append({
            "size": size,
            "nodes": nodes,
            "best_solve_s": best,
            "time_per_node_s": best / nodes,
            "consumption_sweeps": run["consumption_sweeps"],
            "fixpoint_rounds": run["rounds"],
            "converged": run["converged"],
            "equation_evaluations": run["equation_evaluations"],
            "each_equation_once": run_satisfies_each_equation_once(run),
        })
    ratios = [
        larger["time_per_node_s"] / smaller["time_per_node_s"]
        for smaller, larger in zip(rows, rows[1:])
    ]
    return {
        "schema": SCHEMA,
        "seed": seed,
        "n_elements": n_elements,
        "repeats": repeats,
        "tolerance": TOLERANCE,
        "rows": rows,
        "per_node_growth_ratios_s": ratios,
        "linear_within_tolerance": all(r < TOLERANCE for r in ratios),
        "each_equation_once": all(row["each_equation_once"] for row in rows),
    }


def kernel_scaling(sizes=SIZES, seed=11, n_elements=8, repeats=5):
    """Planned-vs-reference solve-phase timing; the
    ``BENCH_kernel.json`` payload.

    Per (size, direction): one untimed solve per backend first — it
    compiles and caches the :class:`~repro.core.kernel.plan.SolverPlan`
    and the view's order/children memos, the one-time costs the batch
    layer amortizes — then ``repeats`` timed solves per backend with the
    view prebuilt, keeping the median.  Every planned solution is
    checked bit-identical to the reference one over all nodes.
    """
    import statistics

    from repro.core.problem import Direction
    from repro.core.reference import solutions_equal
    from repro.graph.views import cached_view

    rows = []
    for size in sizes:
        analyzed = random_analyzed_program(seed, size=size, max_depth=3)
        nodes = len(analyzed.ifg.real_nodes())
        for direction in (Direction.BEFORE, Direction.AFTER):
            problem = random_problem(analyzed, seed=seed,
                                     n_elements=n_elements,
                                     direction=direction)
            view = cached_view(
                analyzed.ifg,
                "before" if direction is Direction.BEFORE else "after")
            # Warmup (also the correctness probe): both backends once,
            # untimed, and the solutions compared bit for bit.
            reference = solve(analyzed.ifg, problem, view=view,
                              backend="reference")
            planned = solve(analyzed.ifg, problem, view=view,
                            backend="planned")
            identical = solutions_equal(reference, planned,
                                        analyzed.ifg.nodes())

            def timed(backend):
                times = []
                for _ in range(repeats):
                    start = time.perf_counter()
                    solve(analyzed.ifg, problem, view=view, backend=backend)
                    times.append(time.perf_counter() - start)
                return statistics.median(times)

            reference_s = timed("reference")
            planned_s = timed("planned")
            rows.append({
                "size": size,
                "nodes": nodes,
                "direction": direction.name,
                "reference_median_s": reference_s,
                "planned_median_s": planned_s,
                "speedup_s": reference_s / planned_s,
                "identical": identical,
            })
    speedups = [row["speedup_s"] for row in rows]
    overall = (sum(row["reference_median_s"] for row in rows)
               / sum(row["planned_median_s"] for row in rows))
    return {
        "schema": KERNEL_SCHEMA,
        "seed": seed,
        "n_elements": n_elements,
        "repeats": repeats,
        "rows": rows,
        "overall_speedup_s": overall,
        "min_speedup_s": min(speedups),
        "all_identical": all(row["identical"] for row in rows),
        # the two --check gates: never slower than the oracle, never a
        # single bit away from it
        "planned_beats_reference": all(s >= 1.0 for s in speedups),
        "meets_2x_target": overall >= 2.0,
    }


def batch_corpus(n_programs=32, size=14, seed=0):
    """A deterministic generator corpus of ``(name, text)`` programs
    with real array traffic."""
    from repro.lang.printer import format_program
    from repro.testing.generator import ArrayProgramGenerator

    corpus = []
    for index in range(n_programs):
        generator = ArrayProgramGenerator(seed=seed + index)
        corpus.append((f"gen-{seed + index:03}",
                       format_program(generator.program(size=size))))
    return corpus


def _batch_mode_row(result):
    return {
        "jobs": result.jobs,
        "elapsed_s": result.elapsed_s,
        "programs_per_second_s": result.programs_per_second,
        "ok": result.ok_count,
        "errors": result.error_count,
        "cache_hits": result.cache_hits,
    }


def batch_throughput(n_programs=32, jobs=4, size=14, seed=0, repeats=2):
    """Measure batch compilation throughput; return the
    ``BENCH_batch.json`` payload.

    Three modes over the same corpus: ``serial_uncached`` (the
    pre-batch-layer baseline), ``parallel_cold`` (worker pool, empty
    disk cache), ``parallel_warm`` (same cache, now fully populated).
    ``repeats`` re-runs the serial and warm modes and keeps the fastest,
    since both are side-effect-free once the cache is warm.
    """
    from repro.batch import PipelineCache, compile_many

    corpus = batch_corpus(n_programs=n_programs, size=size, seed=seed)

    serial = min((compile_many(corpus, jobs=1, cache=None)
                  for _ in range(repeats)), key=lambda r: r.elapsed_s)
    with tempfile.TemporaryDirectory(prefix="repro-bench-batch-") as directory:
        cache = PipelineCache(directory=directory)
        cold = compile_many(corpus, jobs=jobs, cache=cache)
        warm = min((compile_many(corpus, jobs=jobs, cache=cache)
                    for _ in range(repeats)), key=lambda r: r.elapsed_s)

    all_ok = not (serial.error_count or cold.error_count or warm.error_count)
    hit_rate = warm.cache_hits / len(corpus) if corpus else 0.0
    speedup_vs_serial = serial.elapsed_s / warm.elapsed_s
    speedup_vs_cold = cold.elapsed_s / warm.elapsed_s
    return {
        "schema": BATCH_SCHEMA,
        "n_programs": n_programs,
        "program_size": size,
        "seed": seed,
        "jobs": jobs,
        "repeats": repeats,
        "modes": {
            "serial_uncached": _batch_mode_row(serial),
            "parallel_cold": _batch_mode_row(cold),
            "parallel_warm": _batch_mode_row(warm),
        },
        "warm_cache_hit_rate": hit_rate,
        "speedup_warm_vs_serial_s": speedup_vs_serial,
        "speedup_warm_vs_cold_s": speedup_vs_cold,
        "all_ok": all_ok,
        # the two --check gates: parallel must not lose to serial, and a
        # fully warm cache must beat the cold run
        "parallel_beats_serial": speedup_vs_serial >= 1.0,
        "cache_gives_speedup": speedup_vs_cold > 1.0 and hit_rate > 0.0,
    }


def write_bench_json(path, report=None):
    """Write (and return) the payload; ``report=None`` measures fresh."""
    if report is None:
        report = solver_scaling()
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="measure the solver's O(E) trajectory "
                    "(BENCH_solver.json), the batch layer's throughput "
                    "(--batch, BENCH_batch.json), or the planned "
                    "kernel's speedup (--kernel, BENCH_kernel.json)")
    parser.add_argument("--output", default=None,
                        help="where to write the JSON payload (default: "
                             "BENCH_solver.json, BENCH_batch.json with "
                             "--batch, or BENCH_kernel.json with "
                             "--kernel)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when the measured trajectory "
                             "regresses (solver: super-linear growth; "
                             "batch: parallel slower than serial, or a "
                             "warm cache giving no speedup; kernel: "
                             "planned slower than reference, or not "
                             "bit-identical)")
    parser.add_argument("--sizes", type=int, nargs="+", default=list(SIZES))
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats (default: 3 solver, "
                             "2 batch, 5 kernel)")
    parser.add_argument("--batch", action="store_true",
                        help="measure batch compilation throughput "
                             "instead of solver scaling")
    parser.add_argument("--kernel", action="store_true",
                        help="measure the planned solver backend "
                             "against the reference solver")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for --batch")
    parser.add_argument("--programs", type=int, default=32,
                        help="corpus size for --batch")
    args = parser.parse_args(argv)
    if args.kernel:
        return _main_kernel(args)
    if args.batch:
        return _main_batch(args)
    return _main_solver(args)


def _main_solver(args):
    output = args.output or "BENCH_solver.json"
    repeats = 3 if args.repeats is None else args.repeats
    report = solver_scaling(sizes=tuple(args.sizes), repeats=repeats)
    write_bench_json(output, report)
    for row in report["rows"]:
        print(f"size={row['size']} nodes={row['nodes']} "
              f"per_node={row['time_per_node_s'] * 1e6:.1f}us "
              f"sweeps={row['consumption_sweeps']} "
              f"each_equation_once={row['each_equation_once']}")
    print(f"wrote {output} "
          f"(linear_within_tolerance={report['linear_within_tolerance']})")
    if args.check and not (report["linear_within_tolerance"]
                           and report["each_equation_once"]):
        print("error: solver scaling regressed beyond tolerance",
              file=sys.stderr)
        return 1
    return 0


def _main_kernel(args):
    output = args.output or "BENCH_kernel.json"
    repeats = 5 if args.repeats is None else args.repeats
    report = kernel_scaling(sizes=tuple(args.sizes), repeats=repeats)
    write_bench_json(output, report)
    for row in report["rows"]:
        print(f"size={row['size']} direction={row['direction']} "
              f"reference={row['reference_median_s'] * 1e3:.2f}ms "
              f"planned={row['planned_median_s'] * 1e3:.2f}ms "
              f"speedup={row['speedup_s']:.2f}x "
              f"identical={row['identical']}")
    print(f"wrote {output} "
          f"(overall speedup {report['overall_speedup_s']:.2f}x, "
          f"2x target met: {report['meets_2x_target']})")
    if args.check and not (report["all_identical"]
                           and report["planned_beats_reference"]):
        print("error: planned kernel regressed (slower than the "
              "reference solver, or not bit-identical to it)",
              file=sys.stderr)
        return 1
    return 0


def _main_batch(args):
    output = args.output or "BENCH_batch.json"
    repeats = 2 if args.repeats is None else args.repeats
    report = batch_throughput(n_programs=args.programs, jobs=args.jobs,
                              repeats=repeats)
    write_bench_json(output, report)
    for mode, row in report["modes"].items():
        print(f"{mode}: {row['programs_per_second_s']:.1f} programs/s "
              f"(jobs={row['jobs']}, hits={row['cache_hits']}, "
              f"errors={row['errors']})")
    print(f"wrote {output} "
          f"(speedup warm vs serial uncached: "
          f"{report['speedup_warm_vs_serial_s']:.2f}x, warm hit rate: "
          f"{report['warm_cache_hit_rate']:.0%})")
    if args.check and not (report["all_ok"]
                           and report["parallel_beats_serial"]
                           and report["cache_gives_speedup"]):
        print("error: batch throughput regressed (parallel slower than "
              "serial, or warm cache gives no speedup)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
