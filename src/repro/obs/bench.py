"""The machine-readable solver-scaling trajectory: ``BENCH_solver.json``.

The paper's §5.2 complexity claim (every equation evaluated exactly once
per node, O(E) total) is asserted by ``benchmarks/
test_bench_scaling_linear.py``; this module *measures* it into an
artifact CI uploads on every run, so future PRs have a trajectory to
regress against::

    python -m repro.obs.bench --output BENCH_solver.json --check

For each size on the ladder it records the node count, the best
wall-clock solve (instrumentation disabled — the production fast path),
time per node, and — from one additional traced run — the per-equation
evaluation counts, consumption-sweep count and fixpoint rounds.
``--check`` exits nonzero when time per node grows beyond the same 4x
tolerance the pytest benchmark enforces.

Wall-clock fields end in ``_s``; everything else is deterministic.
"""

import argparse
import json
import sys
import time

from repro.core.solver import solve
from repro.obs.collector import tracing
from repro.obs.profile import run_satisfies_each_equation_once
from repro.testing.generator import random_analyzed_program, random_problem

SCHEMA = "repro-bench-solver/1"

#: The size ladder — kept in sync with benchmarks/test_bench_scaling_linear.py.
SIZES = (40, 160, 640)

#: Allowed time-per-node growth between consecutive ladder steps (the
#: pytest benchmark's tolerance; generous because small runs are noisy).
TOLERANCE = 4.0


def _build_instance(size, seed, n_elements):
    analyzed = random_analyzed_program(seed, size=size, max_depth=3)
    problem = random_problem(analyzed, seed=seed, n_elements=n_elements)
    return analyzed, problem


def solver_scaling(sizes=SIZES, seed=11, n_elements=8, repeats=3):
    """Measure the ladder; return the ``BENCH_solver.json`` payload."""
    rows = []
    for size in sizes:
        analyzed, problem = _build_instance(size, seed, n_elements)
        nodes = len(analyzed.ifg.real_nodes())
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            solve(analyzed.ifg, problem)
            best = min(best, time.perf_counter() - start)
        with tracing() as collector:
            solve(analyzed.ifg, problem)
        run = collector.events("solver", "run")[-1]
        rows.append({
            "size": size,
            "nodes": nodes,
            "best_solve_s": best,
            "time_per_node_s": best / nodes,
            "consumption_sweeps": run["consumption_sweeps"],
            "fixpoint_rounds": run["rounds"],
            "converged": run["converged"],
            "equation_evaluations": run["equation_evaluations"],
            "each_equation_once": run_satisfies_each_equation_once(run),
        })
    ratios = [
        larger["time_per_node_s"] / smaller["time_per_node_s"]
        for smaller, larger in zip(rows, rows[1:])
    ]
    return {
        "schema": SCHEMA,
        "seed": seed,
        "n_elements": n_elements,
        "repeats": repeats,
        "tolerance": TOLERANCE,
        "rows": rows,
        "per_node_growth_ratios_s": ratios,
        "linear_within_tolerance": all(r < TOLERANCE for r in ratios),
        "each_equation_once": all(row["each_equation_once"] for row in rows),
    }


def write_bench_json(path, report=None):
    """Write (and return) the payload; ``report=None`` measures fresh."""
    if report is None:
        report = solver_scaling()
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="measure the solver's O(E) trajectory into "
                    "BENCH_solver.json")
    parser.add_argument("--output", default="BENCH_solver.json",
                        help="where to write the JSON payload")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when time per node grows beyond the "
                             "tolerance or an equation count is off")
    parser.add_argument("--sizes", type=int, nargs="+", default=list(SIZES))
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    report = solver_scaling(sizes=tuple(args.sizes), repeats=args.repeats)
    write_bench_json(args.output, report)
    for row in report["rows"]:
        print(f"size={row['size']} nodes={row['nodes']} "
              f"per_node={row['time_per_node_s'] * 1e6:.1f}us "
              f"sweeps={row['consumption_sweeps']} "
              f"each_equation_once={row['each_equation_once']}")
    print(f"wrote {args.output} "
          f"(linear_within_tolerance={report['linear_within_tolerance']})")
    if args.check and not (report["linear_within_tolerance"]
                           and report["each_equation_once"]):
        print("error: solver scaling regressed beyond tolerance",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
