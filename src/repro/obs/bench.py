"""Machine-readable benchmark artifacts: ``BENCH_solver.json``,
``BENCH_batch.json`` and ``BENCH_kernel.json``.

**Solver scaling** — the paper's §5.2 complexity claim (every equation
evaluated exactly once per node, O(E) total) is asserted by
``benchmarks/test_bench_scaling_linear.py``; this module *measures* it
into an artifact CI uploads on every run, so future PRs have a
trajectory to regress against::

    python -m repro.obs.bench --output BENCH_solver.json --check

For each size on the ladder it records the node count, the best
wall-clock solve (instrumentation disabled — the production fast path),
time per node, and — from one additional traced run — the per-equation
evaluation counts, consumption-sweep count and fixpoint rounds.
``--check`` exits nonzero when time per node grows beyond the same 4x
tolerance the pytest benchmark enforces.

**Batch throughput** — the ``repro.batch`` layer's reason to exist
(``docs/scaling.md``)::

    python -m repro.obs.bench --batch --output BENCH_batch.json --check

compiles a generator corpus three ways — serially with no cache,
parallel with a cold content-addressed cache, and parallel again with
the warm cache — and records programs/second, the warm cache hit rate,
and the speedups between modes.  ``--check`` exits nonzero when the
parallel warm run is no faster than the serial uncached one, or when a
full-hit warm cache fails to beat the cold run (i.e. cache hits give no
speedup).

**Kernel speedup** — the compiled solver backends' reason to exist
(``docs/scaling.md``)::

    python -m repro.obs.bench --kernel --output BENCH_kernel.json --check

solves each ladder instance in both directions with the reference, the
planned, and the vector backend (views prebuilt and plans warmed, so
only the solve phase is timed; median of repeats), plus one wide bulk
instance where the vector backend's auto engine takes the word-parallel
matrix path, and records the per-instance and overall speedups plus a
bit-identity verdict against the reference solution.  ``--check`` exits
nonzero when a compiled backend is slower than the reference anywhere,
when the vector backend misses its 5x-over-reference ladder target, or
when any solution differs by a single bit.

**Service throughput** — the resident compile service's reason to exist
(``docs/serving.md``)::

    python -m repro.obs.bench --service --output BENCH_service.json --check

stands up a real in-process :class:`~repro.service.server.CompileService`
(TCP, worker pool, warm cache) and drives it with ``--clients``
concurrent load-generator threads, comparing against a cold
one-shot-per-request baseline (every request pays the full pipeline
with no resident cache — what the pre-service entry points cost).
Client-side latencies are recorded exactly (p50/p90/p99), every
response is verified byte-identical to the direct pipeline output, and
a final drain probe checks that in-flight requests complete before the
server exits.  ``--check`` exits nonzero when any request was dropped,
corrupted, or failed, when the warm resident server fails to double the
cold baseline's throughput, or when the drain left admitted work
unfinished.

**Fleet chaos** — the fault-tolerant fleet's reason to exist
(``docs/robustness.md``)::

    python -m repro.obs.bench --fleet --output BENCH_fleet.json --check

stands up a :class:`~repro.fleet.harness.LocalFleet` (K real shards
behind a :class:`~repro.fleet.router.FleetRouter`) and drives a request
stream through it while a seeded :class:`~repro.fleet.chaos.ChaosPlan`
kills a shard, crashes a worker, and severs connections mid-run.  Every
response is verified byte-identical against a direct in-process
compile.  ``--check`` exits nonzero when any request was lost,
corrupted, or failed, or when any scripted chaos event failed to
execute — the artifact is the proof that the scripted failures really
happened *and* nothing was lost to them.

**Incremental recompilation** — the interval-scoped memoization layer's
reason to exist (``docs/scaling.md``)::

    python -m repro.obs.bench --incr --output BENCH_incr.json --check

warms a cache per corpus program, drives a seeded sequence of mixed
edits (scalar-RHS bumps, distributed-array subscript changes, inserts,
deletes) through :func:`~repro.batch.driver.compile_delta`, and checks
every delta byte-identical against a cold compile of the same text
while counting whole-interval and fragment-splice cache hits.  A
separate speed probe times 1-statement scalar-RHS edits cold versus as
warm deltas.  ``--check`` exits nonzero when any delta output differs
from its cold compile, when the edit sequences produced no
untouched-interval cache hits, or when warm 1-statement deltas are not
at least 3x faster than cold compiles.

**Overlap scheduling** — the ``repro.sched`` scheduler's reason to
exist (``docs/scheduling.md``)::

    python -m repro.obs.bench --overlap --output BENCH_overlap.json --check

runs every :data:`~repro.sched.scenarios.SCENARIOS` row — each a
program whose EAGER/LAZY slack the scheduler can (or, for the control
rows, cannot) exploit — under its clean run and each of its seeded
fault variants, comparing the naive trace-order schedule against the
transformed overlap schedule in the same simulator.  Every row records
both makespans (simulated clock units — deterministic, no ``_s``
suffix), the hidden/exposed latency split, wire occupancy, the
transformation counts, the C1/C3 certification verdict, and whether
the final machine states are identical.  ``--check`` exits nonzero
when any row's final state diverges, any overlap makespan exceeds its
naive makespan, any schedule fails certification, any underlying
placement fails the path-replay checker, or the geomean speedup over
the latency-bound rows falls under the 1.5x target.

Wall-clock fields end in ``_s`` (speedups are ratios of wall-clock and
carry the suffix too); everything else is deterministic.
"""

import argparse
import json
import sys
import tempfile
import time

from repro.core.solver import solve
from repro.obs.collector import tracing
from repro.obs.profile import run_satisfies_each_equation_once
from repro.testing.generator import random_analyzed_program, random_problem

SCHEMA = "repro-bench-solver/1"
BATCH_SCHEMA = "repro-bench-batch/1"
KERNEL_SCHEMA = "repro-bench-kernel/2"
SERVICE_SCHEMA = "repro-bench-service/1"
FLEET_SCHEMA = "repro-bench-fleet/1"
INCR_SCHEMA = "repro-bench-incr/1"
OVERLAP_SCHEMA = "repro-bench-overlap/1"

#: The --check gate on the geomean speedup over latency-bound rows.
OVERLAP_TARGET = 1.5

#: The size ladder — kept in sync with benchmarks/test_bench_scaling_linear.py.
SIZES = (40, 160, 640)

#: Allowed time-per-node growth between consecutive ladder steps (the
#: pytest benchmark's tolerance; generous because small runs are noisy).
TOLERANCE = 4.0


def _build_instance(size, seed, n_elements):
    analyzed = random_analyzed_program(seed, size=size, max_depth=3)
    problem = random_problem(analyzed, seed=seed, n_elements=n_elements)
    return analyzed, problem


def solver_scaling(sizes=SIZES, seed=11, n_elements=8, repeats=3):
    """Measure the ladder; return the ``BENCH_solver.json`` payload."""
    rows = []
    for size in sizes:
        analyzed, problem = _build_instance(size, seed, n_elements)
        nodes = len(analyzed.ifg.real_nodes())
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            solve(analyzed.ifg, problem)
            best = min(best, time.perf_counter() - start)
        with tracing() as collector:
            solve(analyzed.ifg, problem)
        run = collector.events("solver", "run")[-1]
        rows.append({
            "size": size,
            "nodes": nodes,
            "best_solve_s": best,
            "time_per_node_s": best / nodes,
            "consumption_sweeps": run["consumption_sweeps"],
            "fixpoint_rounds": run["rounds"],
            "converged": run["converged"],
            "equation_evaluations": run["equation_evaluations"],
            "each_equation_once": run_satisfies_each_equation_once(run),
        })
    ratios = [
        larger["time_per_node_s"] / smaller["time_per_node_s"]
        for smaller, larger in zip(rows, rows[1:])
    ]
    return {
        "schema": SCHEMA,
        "seed": seed,
        "n_elements": n_elements,
        "repeats": repeats,
        "tolerance": TOLERANCE,
        "rows": rows,
        "per_node_growth_ratios_s": ratios,
        "linear_within_tolerance": all(r < TOLERANCE for r in ratios),
        "each_equation_once": all(row["each_equation_once"] for row in rows),
    }


#: The wide-row shape: (loops, body) for
#: :func:`~repro.testing.generator.wide_analyzed_program`, plus the
#: universe size — big enough that the vector backend's auto engine
#: takes the matrix path (``AUTO_MATRIX_THRESHOLD``).
WIDE_SHAPE = (100, 100)
WIDE_ELEMENTS = 1024


def kernel_scaling(sizes=SIZES, seed=11, n_elements=8, repeats=5):
    """Three-backend solve-phase timing; the ``BENCH_kernel.json``
    payload (schema ``repro-bench-kernel/2``).

    Two row families:

    * **ladder rows** — the usual random-program size ladder, per
      (size, direction): one untimed solve per backend first — it
      compiles and caches the
      :class:`~repro.core.kernel.plan.SolverPlan` and the view's
      order/children memos, the one-time costs the batch layer
      amortizes — then ``repeats`` timed solves per backend with the
      view prebuilt, keeping the median.  Every planned *and* vector
      solution is checked bit-identical to the reference one over all
      nodes.
    * **one wide row** — a :func:`~repro.testing.generator
      .wide_analyzed_program` bulk instance (many independent loop
      nests, a multi-word universe), the regime where the vector
      backend's auto engine switches to the word-parallel matrix path.

    The ``--check`` gates assert only measured truths: bit-identity
    across all three backends, planned ≥ 1x / ≥ 2x-overall the
    reference solver (the schema-1 gates, unchanged), and the vector
    backend ≥ 1x reference on every row and ≥ 5x reference overall on
    the ladder.  The vector backend is *not* gated against planned:
    planned's ``int``-bitset columns are already word-parallel C
    operations, and measurement shows the matrix path roughly at parity
    with it, not ahead (``docs/scaling.md`` has the numbers and the
    analysis).
    """
    import statistics

    from repro.core.kernel.vector import VectorSolver
    from repro.core.problem import Direction
    from repro.core.reference import solutions_equal
    from repro.graph.views import cached_view
    from repro.testing.generator import wide_analyzed_program

    def measure(analyzed, problem, view, backends, reps):
        """Warm + identity-check every backend, then median-time each."""
        solutions = {
            backend: solve(analyzed.ifg, problem, view=view, backend=backend)
            for backend in backends
        }
        identical = all(
            solutions_equal(solutions["reference"], solutions[backend],
                            analyzed.ifg.nodes())
            for backend in backends if backend != "reference")
        medians = {}
        for backend in backends:
            times = []
            for _ in range(reps):
                start = time.perf_counter()
                solve(analyzed.ifg, problem, view=view, backend=backend)
                times.append(time.perf_counter() - start)
            medians[backend] = statistics.median(times)
        return identical, medians

    backends = ("reference", "planned", "vector")
    rows = []
    for size in sizes:
        analyzed = random_analyzed_program(seed, size=size, max_depth=3)
        nodes = len(analyzed.ifg.real_nodes())
        for direction in (Direction.BEFORE, Direction.AFTER):
            problem = random_problem(analyzed, seed=seed,
                                     n_elements=n_elements,
                                     direction=direction)
            view = cached_view(
                analyzed.ifg,
                "before" if direction is Direction.BEFORE else "after")
            identical, medians = measure(analyzed, problem, view,
                                         backends, repeats)
            rows.append({
                "size": size,
                "nodes": nodes,
                "direction": direction.name,
                "reference_median_s": medians["reference"],
                "planned_median_s": medians["planned"],
                "vector_median_s": medians["vector"],
                "speedup_s": medians["reference"] / medians["planned"],
                "vector_speedup_s":
                    medians["reference"] / medians["vector"],
                "vector_engine": VectorSolver(view, problem).engine,
                "identical": identical,
            })

    # The wide row (reference is slow here, so fewer repeats).
    loops, body = WIDE_SHAPE
    analyzed = wide_analyzed_program(seed, loops=loops, body=body)
    problem = random_problem(analyzed, seed=seed, n_elements=WIDE_ELEMENTS,
                             direction=Direction.BEFORE)
    view = cached_view(analyzed.ifg, "before")
    wide_identical, wide_medians = measure(analyzed, problem, view, backends,
                                           max(1, repeats // 2))
    wide = {
        "loops": loops,
        "body": body,
        "n_elements": WIDE_ELEMENTS,
        "nodes": len(analyzed.ifg.real_nodes()),
        "reference_median_s": wide_medians["reference"],
        "planned_median_s": wide_medians["planned"],
        "vector_median_s": wide_medians["vector"],
        "speedup_s": wide_medians["reference"] / wide_medians["planned"],
        "vector_speedup_s":
            wide_medians["reference"] / wide_medians["vector"],
        "vector_vs_planned_s":
            wide_medians["planned"] / wide_medians["vector"],
        "vector_engine": VectorSolver(view, problem).engine,
        "identical": wide_identical,
    }

    speedups = [row["speedup_s"] for row in rows]
    vector_speedups = [row["vector_speedup_s"] for row in rows]
    overall = (sum(row["reference_median_s"] for row in rows)
               / sum(row["planned_median_s"] for row in rows))
    vector_overall = (sum(row["reference_median_s"] for row in rows)
                      / sum(row["vector_median_s"] for row in rows))
    return {
        "schema": KERNEL_SCHEMA,
        "seed": seed,
        "n_elements": n_elements,
        "repeats": repeats,
        "rows": rows,
        "wide": wide,
        "overall_speedup_s": overall,
        "min_speedup_s": min(speedups),
        "overall_vector_speedup_s": vector_overall,
        "min_vector_speedup_s": min(vector_speedups),
        "all_identical": (wide["identical"]
                          and all(row["identical"] for row in rows)),
        # the --check gates: never slower than the oracle, never a
        # single bit away from it
        "planned_beats_reference": all(s >= 1.0 for s in speedups),
        "meets_2x_target": overall >= 2.0,
        "vector_beats_reference": (wide["vector_speedup_s"] >= 1.0
                                   and all(s >= 1.0
                                           for s in vector_speedups)),
        "vector_meets_5x_target": vector_overall >= 5.0,
    }


def batch_corpus(n_programs=32, size=14, seed=0):
    """A deterministic generator corpus of ``(name, text)`` programs
    with real array traffic."""
    from repro.lang.printer import format_program
    from repro.testing.generator import ArrayProgramGenerator

    corpus = []
    for index in range(n_programs):
        generator = ArrayProgramGenerator(seed=seed + index)
        corpus.append((f"gen-{seed + index:03}",
                       format_program(generator.program(size=size))))
    return corpus


def _batch_mode_row(result):
    return {
        "jobs": result.jobs,
        "elapsed_s": result.elapsed_s,
        "programs_per_second_s": result.programs_per_second,
        "ok": result.ok_count,
        "errors": result.error_count,
        "cache_hits": result.cache_hits,
    }


def batch_throughput(n_programs=32, jobs=4, size=14, seed=0, repeats=2):
    """Measure batch compilation throughput; return the
    ``BENCH_batch.json`` payload.

    Three modes over the same corpus: ``serial_uncached`` (the
    pre-batch-layer baseline), ``parallel_cold`` (worker pool, empty
    disk cache), ``parallel_warm`` (same cache, now fully populated).
    ``repeats`` re-runs the serial and warm modes and keeps the fastest,
    since both are side-effect-free once the cache is warm.
    """
    from repro.batch import PipelineCache, compile_many

    corpus = batch_corpus(n_programs=n_programs, size=size, seed=seed)

    serial = min((compile_many(corpus, jobs=1, cache=None)
                  for _ in range(repeats)), key=lambda r: r.elapsed_s)
    with tempfile.TemporaryDirectory(prefix="repro-bench-batch-") as directory:
        cache = PipelineCache(directory=directory)
        cold = compile_many(corpus, jobs=jobs, cache=cache)
        warm = min((compile_many(corpus, jobs=jobs, cache=cache)
                    for _ in range(repeats)), key=lambda r: r.elapsed_s)

    all_ok = not (serial.error_count or cold.error_count or warm.error_count)
    hit_rate = warm.cache_hits / len(corpus) if corpus else 0.0
    speedup_vs_serial = serial.elapsed_s / warm.elapsed_s
    speedup_vs_cold = cold.elapsed_s / warm.elapsed_s
    return {
        "schema": BATCH_SCHEMA,
        "n_programs": n_programs,
        "program_size": size,
        "seed": seed,
        "jobs": jobs,
        "repeats": repeats,
        "modes": {
            "serial_uncached": _batch_mode_row(serial),
            "parallel_cold": _batch_mode_row(cold),
            "parallel_warm": _batch_mode_row(warm),
        },
        "warm_cache_hit_rate": hit_rate,
        "speedup_warm_vs_serial_s": speedup_vs_serial,
        "speedup_warm_vs_cold_s": speedup_vs_cold,
        "all_ok": all_ok,
        # the two --check gates: parallel must not lose to serial, and a
        # fully warm cache must beat the cold run
        "parallel_beats_serial": speedup_vs_serial >= 1.0,
        "cache_gives_speedup": speedup_vs_cold > 1.0 and hit_rate > 0.0,
    }


def incremental_bench(n_programs=4, size=30, seed=0, n_edits=5, repeats=3):
    """Measure incremental recompilation; return the
    ``BENCH_incr.json`` payload (``docs/scaling.md``).

    Per corpus program (jumpy generator programs, warm shared
    :class:`~repro.batch.cache.PipelineCache`):

    1. **edit sequence** — ``n_edits`` cumulative seeded edits of mixed
       kinds (:class:`~repro.testing.edits.EditModel`: scalar-RHS bump,
       distributed-array subscript, insert, delete); each version is
       compiled both ways — :func:`~repro.batch.driver.compile_delta`
       against the warm cache and a cold
       :func:`~repro.batch.driver.compile_one` — and the outputs
       compared byte for byte, accumulating whole-interval and
       fragment-splice hit counts;
    2. **speed probe** — ``repeats`` distinct 1-statement scalar-RHS
       edits of the base, each timed cold (no cache) and as a warm
       delta; the gate compares the summed wall-clocks.

    The three ``--check`` gates: every delta byte-identical to its cold
    compile, at least one untouched-interval cache hit across the edit
    sequences, and warm 1-statement deltas ≥ 3x faster than cold.
    """
    from repro.batch import (
        PipelineCache,
        compile_delta,
        compile_one,
        source_fingerprint,
    )
    from repro.lang.printer import format_program
    from repro.testing.edits import EditModel
    from repro.testing.generator import ArrayProgramGenerator

    cache = PipelineCache()
    model = EditModel(seed=seed)
    rows = []
    mismatches = 0
    reuse_hits = 0
    cold_total_s = delta_total_s = 0.0
    for index in range(n_programs):
        name = f"incr-{seed + index:03}"
        base = format_program(
            ArrayProgramGenerator(seed=seed + index).program(size=size))
        compiled = compile_one(name, base, cache=cache)
        if not compiled.ok:
            raise RuntimeError(f"bench corpus program {name} failed: "
                               f"{compiled.error}")
        intervals = (compiled.incremental or {}).get("intervals_solved", 0)

        # Phase 1: the randomized differential edit sequence.
        steps = []
        current = base
        for kind, edited in model.edit_sequence(base, n_edits):
            delta = compile_delta(name, edited, cache,
                                  base_digest=source_fingerprint(current))
            cold = compile_one(name, edited, cache=None)
            identical = (delta.ok and cold.ok
                         and delta.annotated_source == cold.annotated_source)
            mismatches += not identical
            incr = delta.incremental or {}
            reuse_hits += (incr.get("whole_hits", 0)
                           + incr.get("interval_hits", 0))
            steps.append({
                "kind": kind,
                "identical": identical,
                "whole_hits": incr.get("whole_hits", 0),
                "interval_hits": incr.get("interval_hits", 0),
                "verdict_hits": incr.get("verdict_hits", 0),
                "intervals_changed": incr.get("intervals_changed"),
                "intervals_total": incr.get("intervals_total"),
            })
            current = edited

        # Phase 2: the 1-statement speed probe (distinct scalar-RHS
        # edits of the base, so each delta is a fresh compile against
        # the same warm entries, never a prepared-snapshot replay).
        cold_s = delta_s = 0.0
        probes = 0
        base_digest = source_fingerprint(base)
        for _ in range(repeats):
            edited = model.scalar_rhs(base)
            if edited is None or edited == base:
                continue
            probes += 1
            start = time.perf_counter()
            cold = compile_one(name, edited, cache=None)
            cold_s += time.perf_counter() - start
            start = time.perf_counter()
            delta = compile_delta(name, edited, cache,
                                  base_digest=base_digest)
            delta_s += time.perf_counter() - start
            identical = (delta.ok and cold.ok
                         and delta.annotated_source == cold.annotated_source)
            mismatches += not identical
        cold_total_s += cold_s
        delta_total_s += delta_s
        rows.append({
            "name": name,
            "program_size": size,
            "intervals": intervals,
            "steps": steps,
            "speed_probes": probes,
            "cold_s": cold_s,
            "delta_s": delta_s,
            "speedup_s": cold_s / delta_s if delta_s > 0 else 0.0,
        })
    speedup = cold_total_s / delta_total_s if delta_total_s > 0 else 0.0
    return {
        "schema": INCR_SCHEMA,
        "n_programs": n_programs,
        "program_size": size,
        "seed": seed,
        "n_edits": n_edits,
        "repeats": repeats,
        "rows": rows,
        "reuse_hits": reuse_hits,
        "cold_total_s": cold_total_s,
        "delta_total_s": delta_total_s,
        "speedup_delta_vs_cold_s": speedup,
        # the three --check gates
        "all_identical": mismatches == 0,
        "interval_hits_positive": reuse_hits > 0,
        "meets_3x_target": speedup >= 3.0,
    }


def overlap_bench():
    """Differentially measure the overlap scheduler on every suite
    scenario; return the ``BENCH_overlap.json`` payload
    (``docs/scheduling.md``).

    Per scenario the communication pipeline runs once and its read and
    write placements are re-certified with the path-replay checker;
    then each fault variant (clean run first) builds, certifies, and
    runs both schedules through the simulator.  Makespans are simulated
    clock units — fully deterministic, so the gates are exact, not
    tolerance-banded.
    """
    import math

    from repro.commgen import generate_communication
    from repro.core.checker import check_placement
    from repro.sched.runner import compare_schedules
    from repro.sched.scenarios import SCENARIOS

    rows = []
    placements = []
    for scenario in SCENARIOS:
        result = generate_communication(scenario.source)
        placements_ok = True
        for problem, placement in (
                (result.read_problem, result.read_placement),
                (result.write_problem, result.write_placement)):
            sufficiency = check_placement(result.analyzed.ifg, problem,
                                          placement, min_trips=1)
            balance = check_placement(result.analyzed.ifg, problem, placement)
            placements_ok = (placements_ok
                             and sufficiency.ok(ignore=("safety", "redundant"))
                             and not balance.by_kind("balance"))
        placements.append({
            "scenario": scenario.name,
            "certified": placements_ok,
        })
        program = result.annotated_program
        machine = scenario.machine_model()
        for label, plan in scenario.fault_plans():
            cmp = compare_schedules(
                program, machine, dict(scenario.bindings),
                branch=scenario.branch, seed=scenario.seed, faults=plan)
            rows.append({
                "scenario": scenario.name,
                "title": scenario.title,
                "faults": label,
                "latency_bound": scenario.latency_bound,
                "machine": dict(scenario.machine),
                "bindings": dict(scenario.bindings),
                "naive_makespan": cmp.naive.total_time,
                "overlap_makespan": cmp.overlap.total_time,
                "speedup": cmp.speedup,
                "hidden_latency": cmp.overlap.hidden_latency,
                "exposed_latency": cmp.overlap.exposed_latency,
                "naive_exposed_latency": cmp.naive.exposed_latency,
                "occupancy": cmp.overlap.occupancy(),
                "transforms": dict(cmp.schedule.stats),
                "messages": len(cmp.schedule.graph.groups),
                "state_identical": cmp.states_match,
                "certified": cmp.certified,
            })

    latency_bound = [row["speedup"] for row in rows
                     if row["latency_bound"] and row["faults"] == "none"]
    geomean = math.exp(sum(math.log(s) for s in latency_bound)
                       / len(latency_bound)) if latency_bound else 0.0
    return {
        "schema": OVERLAP_SCHEMA,
        "target": OVERLAP_TARGET,
        "rows": rows,
        "placements": placements,
        "geomean_latency_bound_speedup": geomean,
        # the --check gates
        "all_states_identical": all(r["state_identical"] for r in rows),
        "never_slower": all(r["overlap_makespan"] <= r["naive_makespan"]
                            for r in rows),
        "all_certified": all(r["certified"] for r in rows),
        "placements_certified": all(p["certified"] for p in placements),
        "meets_target": geomean >= OVERLAP_TARGET,
    }


def _exact_percentile(sorted_values, q):
    """Exact sample quantile (nearest-rank) of a sorted list."""
    if not sorted_values:
        return 0.0
    import math

    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def service_throughput(n_clients=8, requests_per_client=12, corpus_size=8,
                       size=14, seed=0, workers=0, queue_limit=None):
    """Load-test a resident compile service; return the
    ``BENCH_service.json`` payload.

    Phases:

    1. **cold one-shot baseline** — every request recompiles from
       scratch with no resident cache (the cost of today's one-shot
       entry points), which also pins the expected byte-exact output of
       every corpus program;
    2. **warm resident service** — a real
       :class:`~repro.service.runner.ThreadedServer` is warmed once per
       distinct program, then ``n_clients`` threads (own connections)
       each fire ``requests_per_client`` requests, honoring
       backpressure; every response is checked byte-identical;
    3. **drain probe** — a handful of slow compiles are put in flight,
       then ``drain`` is issued; all admitted requests must complete.
    """
    import threading

    from repro.batch.driver import compile_one
    from repro.service import ServiceClient, ServiceConfig, ThreadedServer

    corpus = batch_corpus(n_programs=corpus_size, size=size, seed=seed)
    total_requests = n_clients * requests_per_client

    # Phase 1: the cold baseline, which doubles as the oracle.
    expected = {}
    start = time.perf_counter()
    for index in range(total_requests):
        name, text = corpus[index % len(corpus)]
        compiled = compile_one(name, text, cache=None)
        if not compiled.ok:
            raise RuntimeError(f"bench corpus program {name} failed: "
                               f"{compiled.error}")
        expected[name] = compiled.annotated_source
    cold_elapsed = time.perf_counter() - start

    config = ServiceConfig(
        port=0, workers=workers,
        queue_limit=queue_limit if queue_limit else max(16, 2 * n_clients))
    lock = threading.Lock()
    latencies = []
    counts = {"dropped": 0, "corrupted": 0, "failed": 0, "busy_retries": 0}

    def load_client(client_index):
        try:
            with ServiceClient(port=port, timeout_s=120) as client:
                barrier.wait()
                for i in range(requests_per_client):
                    name, text = corpus[(client_index + i) % len(corpus)]
                    t0 = time.perf_counter()

                    def note_retry(delay, _sleep=time.sleep):
                        with lock:
                            counts["busy_retries"] += 1
                        _sleep(delay)

                    try:
                        result = client.compile_retrying(text, name=name,
                                                         sleep=note_retry)
                    except Exception:
                        with lock:
                            counts["dropped"] += 1
                        continue
                    elapsed = time.perf_counter() - t0
                    with lock:
                        latencies.append(elapsed)
                        if not result.get("ok"):
                            counts["failed"] += 1
                        elif result.get("annotated_source") != expected[name]:
                            counts["corrupted"] += 1
        except Exception:
            with lock:
                counts["dropped"] += requests_per_client

    with ThreadedServer(config) as server:
        port = server.port
        # Warm the resident cache once per distinct program.
        with ServiceClient(port=port, timeout_s=120) as client:
            for name, text in corpus:
                client.compile_retrying(text, name=name)
        barrier = threading.Barrier(n_clients + 1)
        threads = [threading.Thread(target=load_client, args=(index,))
                   for index in range(n_clients)]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        warm_elapsed = time.perf_counter() - start
        with ServiceClient(port=port, timeout_s=120) as client:
            status = client.status()
        drain = _drain_probe(port, seed=seed)

    latencies.sort()
    completed = len(latencies)
    cold_rps = total_requests / cold_elapsed if cold_elapsed > 0 else 0.0
    warm_rps = completed / warm_elapsed if warm_elapsed > 0 else 0.0
    speedup = warm_rps / cold_rps if cold_rps > 0 else 0.0
    clean = (counts["dropped"] == 0 and counts["corrupted"] == 0
             and counts["failed"] == 0 and completed == total_requests)
    return {
        "schema": SERVICE_SCHEMA,
        "n_clients": n_clients,
        "requests_per_client": requests_per_client,
        "corpus_size": corpus_size,
        "program_size": size,
        "seed": seed,
        "modes": {
            "cold_oneshot": {
                "elapsed_s": cold_elapsed,
                "requests_per_second_s": cold_rps,
            },
            "warm_service": {
                "elapsed_s": warm_elapsed,
                "requests_per_second_s": warm_rps,
                "workers": status["server"]["workers"],
                "pool": status["server"]["pool"],
            },
        },
        "requests": {
            "total": total_requests,
            "completed": completed,
            "dropped": counts["dropped"],
            "corrupted": counts["corrupted"],
            "failed": counts["failed"],
            "busy_retries": counts["busy_retries"],
        },
        "latency": {
            "p50_s": _exact_percentile(latencies, 0.5),
            "p90_s": _exact_percentile(latencies, 0.9),
            "p99_s": _exact_percentile(latencies, 0.99),
            "mean_s": sum(latencies) / completed if completed else 0.0,
            "max_s": latencies[-1] if latencies else 0.0,
        },
        "service_status": status,
        "drain": drain,
        "speedup_warm_vs_cold_s": speedup,
        "sustained_clients": n_clients,
        # the three --check gates
        "zero_dropped_or_corrupted": clean,
        "warm_beats_cold_2x": speedup >= 2.0,
        "drain_completed_in_flight": drain["ok"],
    }


def _drain_probe(port, seed=0, in_flight=4, probe_size=60):
    """Put slow compiles in flight, drain, and verify every admitted
    request completed."""
    import threading

    from repro.lang.printer import format_program
    from repro.service import E_DRAINING, ServiceClient, ServiceError
    from repro.testing.generator import ArrayProgramGenerator

    slow = format_program(
        ArrayProgramGenerator(seed=seed + 101).program(size=probe_size))
    outcomes = []
    lock = threading.Lock()

    def probe(index):
        try:
            with ServiceClient(port=port, timeout_s=120) as client:
                result = client.compile(slow, name=f"drain-{index}")
                with lock:
                    outcomes.append(("completed", bool(result.get("ok"))))
        except ServiceError as error:
            with lock:
                outcomes.append((error.code, False))
        except Exception as error:
            with lock:
                outcomes.append((type(error).__name__, False))

    with ServiceClient(port=port, timeout_s=120) as drainer:
        threads = [threading.Thread(target=probe, args=(index,))
                   for index in range(in_flight)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        reply = drainer.drain()
    for thread in threads:
        thread.join()
    tally = {}
    for code, _ in outcomes:
        tally[code] = tally.get(code, 0) + 1
    # Admitted work must have completed ok; racing past admission into
    # the draining refusal is legitimate, anything else is not.
    ok = (bool(reply.get("drained"))
          and all(ok for code, ok in outcomes if code == "completed")
          and all(code in ("completed", E_DRAINING) for code, _ in outcomes))
    return {
        "in_flight": in_flight,
        "outcomes": tally,
        "drain_reply_ok": bool(reply.get("drained")),
        "ok": ok,
    }


def fleet_chaos(n_shards=3, n_requests=24, corpus_size=8, size=14, seed=0,
                plan=None, workers=2, queue_limit=16):
    """Drive a live fleet through scripted chaos; return the
    ``BENCH_fleet.json`` payload.

    Phases:

    1. **oracle** — every distinct corpus program is compiled directly
       in-process, pinning the expected byte-exact output;
    2. **chaos run** — a :class:`~repro.fleet.harness.LocalFleet`
       (``n_shards`` real shards behind a router) serves ``n_requests``
       requests while the seeded plan kills a shard, crashes a worker,
       and severs connections (:func:`repro.fleet.chaos.run_chaos`);
    3. **verdict** — every reply is compared byte for byte against the
       oracle; the gates are *zero lost, zero corrupted, zero failed*
       and *every scripted chaos event executed*.
    """
    from repro.batch.driver import compile_one
    from repro.fleet import ChaosPlan, FleetConfig, LocalFleet, run_chaos
    from repro.service import ServiceConfig

    plan = plan if plan is not None else ChaosPlan(seed=seed)
    corpus = batch_corpus(n_programs=corpus_size, size=size, seed=seed)

    # Phase 1: the oracle.
    expected = {}
    for name, text in corpus:
        compiled = compile_one(name, text, cache=None)
        if not compiled.ok:
            raise RuntimeError(f"bench corpus program {name} failed: "
                               f"{compiled.error}")
        expected[name] = compiled.annotated_source

    # Phase 2: the chaos run.
    stream = [corpus[index % len(corpus)] for index in range(n_requests)]
    service_config = ServiceConfig(pool="thread", workers=workers,
                                   queue_limit=queue_limit)
    fleet_config = FleetConfig(heartbeat_s=0.1, reset_timeout_s=0.3)
    with LocalFleet(n_shards=n_shards, service_config=service_config,
                    fleet_config=fleet_config) as fleet:
        report = run_chaos(fleet, stream, plan)

    # Phase 3: the verdict.
    corrupted = failed = 0
    latencies = []
    for row in report["results"]:
        if row["lost"]:
            continue
        latencies.append(row["latency_s"])
        result = row["result"]
        if not result.get("ok"):
            failed += 1
        elif result.get("annotated_source") != expected[row["name"]]:
            corrupted += 1
    latencies.sort()
    scripted = plan.script(n_shards, n_requests)
    executed = [event for event in report["events"] if "error" not in event]
    chaos_executed = (len(executed) == len(scripted)
                      and {e["action"] for e in executed}
                      >= {e.action for e in scripted})
    clean = (report["lost"] == 0 and corrupted == 0 and failed == 0)
    return {
        "schema": FLEET_SCHEMA,
        "n_shards": n_shards,
        "n_requests": n_requests,
        "corpus_size": corpus_size,
        "program_size": size,
        "seed": seed,
        "chaos_plan": {
            "seed": plan.seed,
            "kills": plan.kills,
            "worker_crashes": plan.worker_crashes,
            "severs": plan.severs,
            "delays": plan.delays,
            "delay_s": plan.delay_s,
        },
        "events": report["events"],
        "elapsed_s": report["elapsed_s"],
        "requests": {
            "total": n_requests,
            "completed": len(latencies),
            "lost": report["lost"],
            "corrupted": corrupted,
            "failed": failed,
        },
        "latency": {
            "p50_s": _exact_percentile(latencies, 0.5),
            "p90_s": _exact_percentile(latencies, 0.9),
            "p99_s": _exact_percentile(latencies, 0.99),
            "mean_s": sum(latencies) / len(latencies) if latencies else 0.0,
            "max_s": latencies[-1] if latencies else 0.0,
        },
        "router": report["router"],
        "supervision": report["supervision"],
        # the two --check gates
        "zero_lost_or_corrupted": clean,
        "all_chaos_executed": chaos_executed,
    }


def write_bench_json(path, report=None):
    """Write (and return) the payload; ``report=None`` measures fresh."""
    if report is None:
        report = solver_scaling()
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="measure the solver's O(E) trajectory "
                    "(BENCH_solver.json), the batch layer's throughput "
                    "(--batch, BENCH_batch.json), or the planned "
                    "kernel's speedup (--kernel, BENCH_kernel.json), "
                    "the resident service's throughput (--service, "
                    "BENCH_service.json), or the fleet's behavior under "
                    "chaos (--fleet, BENCH_fleet.json)")
    parser.add_argument("--output", default=None,
                        help="where to write the JSON payload (default: "
                             "BENCH_solver.json, BENCH_batch.json with "
                             "--batch, or BENCH_kernel.json with "
                             "--kernel)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when the measured trajectory "
                             "regresses (solver: super-linear growth; "
                             "batch: parallel slower than serial, or a "
                             "warm cache giving no speedup; kernel: "
                             "planned slower than reference, or not "
                             "bit-identical)")
    parser.add_argument("--sizes", type=int, nargs="+", default=list(SIZES))
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats (default: 3 solver, "
                             "2 batch, 5 kernel)")
    parser.add_argument("--batch", action="store_true",
                        help="measure batch compilation throughput "
                             "instead of solver scaling")
    parser.add_argument("--kernel", action="store_true",
                        help="measure the planned solver backend "
                             "against the reference solver")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for --batch")
    parser.add_argument("--programs", type=int, default=None,
                        help="corpus size (default 32 for --batch, "
                             "4 for --incr)")
    parser.add_argument("--incr", action="store_true",
                        help="measure incremental recompilation "
                             "(compile_delta) against cold compiles")
    parser.add_argument("--edits", type=int, default=5,
                        help="edits per program in the --incr "
                             "differential sequence")
    parser.add_argument("--service", action="store_true",
                        help="load-test a resident compile service "
                             "against the cold one-shot baseline")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads for --service")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client for --service "
                             "(default 12); total requests for --fleet "
                             "(default 24)")
    parser.add_argument("--fleet", action="store_true",
                        help="drive a local compile fleet through "
                             "scripted chaos (shard kill, worker crash, "
                             "severed connections) and verify every "
                             "response byte-identical")
    parser.add_argument("--shards", type=int, default=3,
                        help="shard count for --fleet")
    parser.add_argument("--overlap", action="store_true",
                        help="differentially measure the overlap "
                             "scheduler against the naive schedule on "
                             "the repro.sched scenario suite")
    parser.add_argument("--chaos", metavar="SPEC", default=None,
                        help="chaos plan for --fleet, e.g. "
                             "'kills=1,crashes=1,severs=2,seed=7'")
    args = parser.parse_args(argv)
    if args.kernel:
        return _main_kernel(args)
    if args.batch:
        return _main_batch(args)
    if args.service:
        return _main_service(args)
    if args.fleet:
        return _main_fleet(args)
    if args.incr:
        return _main_incr(args)
    if args.overlap:
        return _main_overlap(args)
    return _main_solver(args)


def _main_overlap(args):
    output = args.output or "BENCH_overlap.json"
    report = overlap_bench()
    write_bench_json(output, report)
    for row in report["rows"]:
        transforms = ",".join(f"{k}={v}"
                              for k, v in sorted(row["transforms"].items())
                              if v)
        print(f"{row['scenario']:9s} faults={row['faults']:34s} "
              f"{row['overlap_makespan']:.0f} vs "
              f"{row['naive_makespan']:.0f} naive "
              f"({row['speedup']:.2f}x) "
              f"state={'identical' if row['state_identical'] else 'DIVERGED'} "
              f"certified={'ok' if row['certified'] else 'VIOLATED'}"
              f"{' [' + transforms + ']' if transforms else ''}")
    print(f"wrote {output} "
          f"(geomean latency-bound speedup: "
          f"{report['geomean_latency_bound_speedup']:.2f}x, "
          f"target {report['target']}x met: {report['meets_target']}; "
          f"all states identical: {report['all_states_identical']})")
    if args.check and not (report["all_states_identical"]
                           and report["never_slower"]
                           and report["all_certified"]
                           and report["placements_certified"]
                           and report["meets_target"]):
        print("error: overlap scheduling regressed (a transformed "
              "schedule diverged from the naive machine state, ran "
              "slower than naive, failed C1/C3 certification, or the "
              "suite fell under its geomean speedup target)",
              file=sys.stderr)
        return 1
    return 0


def _main_solver(args):
    output = args.output or "BENCH_solver.json"
    repeats = 3 if args.repeats is None else args.repeats
    report = solver_scaling(sizes=tuple(args.sizes), repeats=repeats)
    write_bench_json(output, report)
    for row in report["rows"]:
        print(f"size={row['size']} nodes={row['nodes']} "
              f"per_node={row['time_per_node_s'] * 1e6:.1f}us "
              f"sweeps={row['consumption_sweeps']} "
              f"each_equation_once={row['each_equation_once']}")
    print(f"wrote {output} "
          f"(linear_within_tolerance={report['linear_within_tolerance']})")
    if args.check and not (report["linear_within_tolerance"]
                           and report["each_equation_once"]):
        print("error: solver scaling regressed beyond tolerance",
              file=sys.stderr)
        return 1
    return 0


def _main_kernel(args):
    output = args.output or "BENCH_kernel.json"
    repeats = 5 if args.repeats is None else args.repeats
    report = kernel_scaling(sizes=tuple(args.sizes), repeats=repeats)
    write_bench_json(output, report)
    for row in report["rows"]:
        print(f"size={row['size']} direction={row['direction']} "
              f"reference={row['reference_median_s'] * 1e3:.2f}ms "
              f"planned={row['planned_median_s'] * 1e3:.2f}ms "
              f"vector={row['vector_median_s'] * 1e3:.2f}ms"
              f"[{row['vector_engine']}] "
              f"speedup={row['speedup_s']:.2f}x "
              f"vector_speedup={row['vector_speedup_s']:.2f}x "
              f"identical={row['identical']}")
    wide = report["wide"]
    print(f"wide ({wide['loops']}x{wide['body']}, {wide['n_elements']} el, "
          f"{wide['nodes']} nodes) "
          f"reference={wide['reference_median_s'] * 1e3:.1f}ms "
          f"planned={wide['planned_median_s'] * 1e3:.1f}ms "
          f"vector={wide['vector_median_s'] * 1e3:.1f}ms"
          f"[{wide['vector_engine']}] "
          f"vector_speedup={wide['vector_speedup_s']:.2f}x "
          f"identical={wide['identical']}")
    print(f"wrote {output} "
          f"(planned overall {report['overall_speedup_s']:.2f}x, "
          f"2x target met: {report['meets_2x_target']}; "
          f"vector overall {report['overall_vector_speedup_s']:.2f}x, "
          f"5x target met: {report['vector_meets_5x_target']})")
    if args.check and not (report["all_identical"]
                           and report["planned_beats_reference"]
                           and report["vector_beats_reference"]
                           and report["vector_meets_5x_target"]):
        print("error: kernel regressed (a compiled backend slower than "
              "the reference solver, vector below its 5x ladder target, "
              "or a solution not bit-identical to the oracle)",
              file=sys.stderr)
        return 1
    return 0


def _main_incr(args):
    output = args.output or "BENCH_incr.json"
    repeats = 3 if args.repeats is None else args.repeats
    programs = 4 if args.programs is None else args.programs
    report = incremental_bench(n_programs=programs, n_edits=args.edits,
                               repeats=repeats)
    write_bench_json(output, report)
    for row in report["rows"]:
        kinds = ",".join(step["kind"] for step in row["steps"])
        print(f"{row['name']}: edits=[{kinds}] "
              f"identical={all(s['identical'] for s in row['steps'])} "
              f"delta_speedup={row['speedup_s']:.2f}x")
    print(f"wrote {output} "
          f"(all_identical={report['all_identical']}, "
          f"reuse_hits={report['reuse_hits']}, "
          f"speedup delta vs cold: "
          f"{report['speedup_delta_vs_cold_s']:.2f}x)")
    if args.check and not (report["all_identical"]
                           and report["interval_hits_positive"]
                           and report["meets_3x_target"]):
        print("error: incremental recompilation regressed (a delta "
              "compile differed from the cold compile, untouched "
              "intervals gave no cache hits, or warm deltas fell under "
              "the 3x speedup target)", file=sys.stderr)
        return 1
    return 0


def _main_batch(args):
    output = args.output or "BENCH_batch.json"
    repeats = 2 if args.repeats is None else args.repeats
    programs = 32 if args.programs is None else args.programs
    report = batch_throughput(n_programs=programs, jobs=args.jobs,
                              repeats=repeats)
    write_bench_json(output, report)
    for mode, row in report["modes"].items():
        print(f"{mode}: {row['programs_per_second_s']:.1f} programs/s "
              f"(jobs={row['jobs']}, hits={row['cache_hits']}, "
              f"errors={row['errors']})")
    print(f"wrote {output} "
          f"(speedup warm vs serial uncached: "
          f"{report['speedup_warm_vs_serial_s']:.2f}x, warm hit rate: "
          f"{report['warm_cache_hit_rate']:.0%})")
    if args.check and not (report["all_ok"]
                           and report["parallel_beats_serial"]
                           and report["cache_gives_speedup"]):
        print("error: batch throughput regressed (parallel slower than "
              "serial, or warm cache gives no speedup)", file=sys.stderr)
        return 1
    return 0


def _main_service(args):
    output = args.output or "BENCH_service.json"
    requests = 12 if args.requests is None else args.requests
    report = service_throughput(n_clients=args.clients,
                                requests_per_client=requests)
    write_bench_json(output, report)
    for mode, row in report["modes"].items():
        print(f"{mode}: {row['requests_per_second_s']:.1f} requests/s "
              f"({row['elapsed_s'] * 1e3:.0f}ms total)")
    latency = report["latency"]
    requests = report["requests"]
    print(f"latency: p50={latency['p50_s'] * 1e3:.1f}ms "
          f"p90={latency['p90_s'] * 1e3:.1f}ms "
          f"p99={latency['p99_s'] * 1e3:.1f}ms "
          f"(completed={requests['completed']}/{requests['total']}, "
          f"dropped={requests['dropped']}, "
          f"corrupted={requests['corrupted']}, "
          f"busy_retries={requests['busy_retries']})")
    print(f"wrote {output} "
          f"(speedup warm vs cold: {report['speedup_warm_vs_cold_s']:.2f}x, "
          f"drain ok: {report['drain_completed_in_flight']})")
    if args.check and not (report["zero_dropped_or_corrupted"]
                           and report["warm_beats_cold_2x"]
                           and report["drain_completed_in_flight"]):
        print("error: service throughput regressed (a request was "
              "dropped, corrupted, or failed; the warm service did not "
              "double the cold baseline; or drain left admitted work "
              "unfinished)", file=sys.stderr)
        return 1
    return 0


def _main_fleet(args):
    from repro.fleet import ChaosPlan

    output = args.output or "BENCH_fleet.json"
    requests = 24 if args.requests is None else args.requests
    plan = ChaosPlan.parse(args.chaos) if args.chaos else None
    report = fleet_chaos(n_shards=args.shards, n_requests=requests,
                         plan=plan)
    write_bench_json(output, report)
    for event in report["events"]:
        verdict = event.get("error") or event.get("detail", "")
        print(f"chaos @request {event['at_request']}: {event['action']} "
              f"-> {verdict}")
    counts = report["requests"]
    latency = report["latency"]
    print(f"requests: {counts['completed']}/{counts['total']} completed "
          f"(lost={counts['lost']}, corrupted={counts['corrupted']}, "
          f"failed={counts['failed']}) in {report['elapsed_s']:.2f}s")
    print(f"latency: p50={latency['p50_s'] * 1e3:.1f}ms "
          f"p90={latency['p90_s'] * 1e3:.1f}ms "
          f"p99={latency['p99_s'] * 1e3:.1f}ms")
    fleet = report["router"]["fleet"]
    print(f"router: forwards={fleet['forwards']} "
          f"rerouted={fleet['rerouted']} spilled={fleet['spilled']} "
          f"breaker_opens={fleet['breaker_opens']}; supervision: "
          f"pool_rebuilds={report['supervision']['pool_rebuilds']} "
          f"requeued={report['supervision']['requeued']}")
    print(f"wrote {output} "
          f"(zero_lost_or_corrupted={report['zero_lost_or_corrupted']}, "
          f"all_chaos_executed={report['all_chaos_executed']})")
    if args.check and not (report["zero_lost_or_corrupted"]
                           and report["all_chaos_executed"]):
        print("error: fleet chaos regressed (a request was lost, "
              "corrupted, or failed under chaos, or a scripted chaos "
              "event did not execute)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
