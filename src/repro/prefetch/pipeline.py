"""The prefetch-placement pipeline.

Differences from communication generation:

* *every* declared array participates (the memory hierarchy does not
  care about distribution);
* a load gives its section for later loads (it is cached) — so repeated
  reads of the same section prefetch once;
* a store steals conflicting sections (stale lines) but also gives its
  own section (write-allocate: the stored line is in cache afterwards);
* the placement is emitted as ``PREFETCH{...}`` (the EAGER solution) and
  ``WAIT{...}`` markers (the LAZY solution — where the data must have
  arrived; a real compiler would emit nothing there, we keep the marker
  so the simulator can measure stall time).
"""

from repro.analysis.references import collect_accesses
from repro.commgen.annotate import Annotator
from repro.core.placement import Placement
from repro.core.postpass import shift_synthetic_productions
from repro.core.problem import Direction, Problem
from repro.core.solver import solve
from repro.analysis.sections import section_conflicts
from repro.lang.parser import parse
from repro.lang.printer import format_program
from repro.lang.symbols import SymbolTable
from repro.testing.programs import AnalyzedProgram


class PrefetchResult:
    """Annotated program plus the underlying placement."""

    def __init__(self, analyzed, problem, solution, placement):
        self.analyzed = analyzed
        self.problem = problem
        self.solution = solution
        self.placement = placement

    @property
    def annotated_program(self):
        return self.analyzed.program

    def annotated_source(self):
        return format_program(self.analyzed.program)

    def prefetch_count(self):
        from repro.core.problem import Timing

        return len(self.placement.productions(Timing.EAGER))


def build_prefetch_problem(accesses, symbols, write_allocate=True):
    """The prefetch instance: loads take, stores steal (and give with
    write-allocate), loads give for free (the line is cached)."""
    problem = Problem(direction=Direction.BEFORE)
    descriptors = []
    for access in accesses:
        if access.descriptor not in descriptors:
            descriptors.append(access.descriptor)
            problem.universe.add(access.descriptor)

    for access in accesses:
        if access.is_def:
            for descriptor in descriptors:
                if descriptor == access.descriptor:
                    continue
                if section_conflicts(access.descriptor, descriptor):
                    problem.add_steal(access.node, descriptor)
            if write_allocate:
                problem.add_give(access.node, access.descriptor)
            else:
                problem.add_steal(access.node, access.descriptor)
        else:
            problem.add_take(access.node, access.descriptor)
            # after the demand load the section is cached:
            problem.add_give(access.node, access.descriptor)
    return problem


def generate_prefetches(source, write_allocate=True, postpass=True,
                        hoist_zero_trip=True):
    """Annotate ``source`` with ``PREFETCH``/``WAIT`` markers."""
    program = parse(source) if isinstance(source, str) else source
    analyzed = AnalyzedProgram(program)
    symbols = SymbolTable.from_program(program)
    accesses, _ = collect_accesses(analyzed, symbols)

    problem = build_prefetch_problem(accesses, symbols, write_allocate)
    problem.hoist_zero_trip = hoist_zero_trip
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    if postpass:
        shift_synthetic_productions(placement)

    annotator = Annotator(analyzed)
    annotator.apply(placement, "prefetch", one_per_section=True)
    return PrefetchResult(analyzed, problem, solution, placement)
