"""Cache prefetching via GIVE-N-TAKE (paper §6's suggested application).

A memory load is a *consumer* of its cache line(s); a prefetch is a
production region: the EAGER solution issues ``PREFETCH`` as early as
possible, the LAZY solution marks the latest point the data must have
arrived (the demand access).  Stores to the same region *steal* (the
prefetched line goes stale), and a load itself *gives* the line for
subsequent loads (it is in cache now) — the same give-for-free coupling
as communication generation, with no separate equation system.

This instance exercises the framework's BEFORE/EAGER+LAZY machinery on
a completely different cost model, demonstrating the generality claimed
in §6.
"""

from repro.prefetch.pipeline import PrefetchResult, generate_prefetches

__all__ = ["PrefetchResult", "generate_prefetches"]
