"""Batch compilation: many programs, worker pools, memoized pipelines.

The plain pipeline recompiles everything from scratch on every call;
this package makes corpus-scale compilation cheap (``docs/scaling.md``):

* :class:`PipelineCache` — a content-addressed cache of the immutable
  pipeline stages (analyzed frontends and fully solved pre-annotation
  state), storing pickled snapshots so the annotator's in-place AST
  mutation can never leak into a cached entry;
* :func:`compile_many` / :func:`compile_one` — the drivers that fan a
  corpus across a process pool and merge per-program results, errors,
  cache statistics, traces, and degradation reports;
* ``repro batch <dir>`` — the CLI front door;
* ``python -m repro.obs.bench --batch`` — the throughput benchmark
  (``BENCH_batch.json``).
"""

from repro.batch.cache import CACHE_SCHEMA, PipelineCache, source_fingerprint
from repro.batch.driver import (
    MERKLE_NAMESPACE,
    PREPARED_NAMESPACE,
    BatchOptions,
    BatchResult,
    CompiledProgram,
    compile_delta,
    compile_many,
    compile_one,
    resolve_jobs,
)

__all__ = [
    "CACHE_SCHEMA",
    "PipelineCache",
    "source_fingerprint",
    "MERKLE_NAMESPACE",
    "PREPARED_NAMESPACE",
    "BatchOptions",
    "BatchResult",
    "CompiledProgram",
    "compile_delta",
    "compile_many",
    "compile_one",
    "resolve_jobs",
]
