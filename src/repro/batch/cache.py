"""Content-addressed cache for pipeline state (``docs/scaling.md``).

The :class:`PipelineCache` memoizes the expensive, *immutable* stages of
compilation — parse → CFG → normalize → ``IntervalFlowGraph`` (namespace
``"analyzed"``) and the fully solved pre-annotation state (namespace
``"prepared"``) — keyed by a SHA-256 fingerprint of the source text plus
every option that influences the cached computation.

Two properties are load-bearing:

* **Entries are stored as pickle bytes, not objects.**
  :meth:`put` snapshots the state *at store time* and :meth:`get`
  materializes a fresh object graph on every hit.  This is the defense
  against the pipeline's in-place mutation:
  :func:`~repro.commgen.pipeline.annotate_prepared` splices READ/WRITE
  statements directly into ``analyzed.program``, so handing two callers
  the same object would make the second see the first caller's
  communication statements as real code.  Bytes in, private copy out —
  a cached program can never be observed mutated.
* **Keys are content addresses.** The same text with the same options
  always maps to the same key, across processes and across runs (with a
  ``directory``), so a warm disk cache is shared by every worker of
  :func:`repro.batch.compile_many`.

The cache is in-memory by default; give it a ``directory`` to persist
entries (one file per entry, written atomically via rename so a crashed
worker never leaves a torn entry behind; the ``*.tmp`` staging file a
worker killed mid-write leaks is swept the next time a cache opens the
directory).
"""

import hashlib
import os
import pickle
import tempfile
import time
from collections import OrderedDict

#: Bump when the pickled payload layout changes: fingerprints include it,
#: so stale on-disk entries from older layouts simply miss.
CACHE_SCHEMA = "repro-batch-cache/2"

#: Option values allowed into a fingerprint: their ``repr`` is stable
#: across processes and runs.  Anything else (an object with the default
#: ``<... at 0x7f...>`` repr, a dict, a set with arbitrary iteration
#: order) would poison the key with per-process noise.
_FINGERPRINT_SCALARS = (bool, int, float, str, type(None))

#: A ``*.tmp`` staging file older than this is an orphan — its writer
#: crashed between :func:`tempfile.mkstemp` and the atomic rename — and
#: is swept when a cache opens the directory.  Younger files may belong
#: to a live writer in another process and are left alone.
TMP_SWEEP_AGE_S = 60.0


def _validate_fingerprint_value(name, value):
    """Reject option values whose ``repr`` is not a stable content
    address.

    An object with the default ``repr`` (``<Foo object at 0x7f...>``)
    would fold a per-process heap address into the key — the entry could
    never hit again across runs, silently turning the cache into a pure
    write path.  Only primitives (bool/int/float/str/None) and flat
    tuples thereof are allowed; everything else raises immediately so
    the bad call site is loud instead of the cache quietly cold."""
    if isinstance(value, _FINGERPRINT_SCALARS):
        return
    if isinstance(value, tuple):
        for item in value:
            if not isinstance(item, _FINGERPRINT_SCALARS):
                raise TypeError(
                    f"cache option {name!r} contains non-primitive tuple "
                    f"item {item!r} ({type(item).__name__}); fingerprint "
                    f"values must be bool/int/float/str/None or flat "
                    f"tuples thereof")
        return
    raise TypeError(
        f"cache option {name!r} has non-primitive value {value!r} "
        f"({type(value).__name__}); fingerprint values must be "
        f"bool/int/float/str/None or flat tuples thereof")


def source_fingerprint(text, **options):
    """The content address of ``text`` compiled under ``options``.

    Options are folded into the hash in sorted order, so keyword order
    never matters.  Values must be primitives (bool/int/float/str/None)
    or flat tuples thereof — anything whose ``repr`` is not stable
    across processes raises :class:`TypeError` rather than minting an
    unrepeatable key."""
    digest = hashlib.sha256()
    digest.update(CACHE_SCHEMA.encode())
    digest.update(b"\x00")
    digest.update(text.encode())
    for name in sorted(options):
        _validate_fingerprint_value(name, options[name])
        digest.update(f"\x00{name}={options[name]!r}".encode())
    return digest.hexdigest()


class PipelineCache:
    """Content-addressed, namespaced pickle store with hit/miss stats.

    ``directory=None`` keeps entries in memory only (fastest, private to
    the process); with a directory every entry is also written to disk,
    making the cache shared across worker processes and warm across
    runs.  ``max_memory_entries`` bounds the in-memory layer with LRU
    eviction — a hit refreshes recency, so hot entries survive no matter
    how early they were inserted; disk entries are never evicted here.
    """

    def __init__(self, directory=None, max_memory_entries=1024):
        self.directory = directory
        self.max_memory_entries = max_memory_entries
        # (namespace, key) -> pickle bytes, ordered cold -> hot
        self._memory = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.swept_tmp = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self.swept_tmp = self._sweep_orphaned_tmp()

    def _sweep_orphaned_tmp(self, max_age_s=TMP_SWEEP_AGE_S):
        """Remove ``*.tmp`` staging files a crashed writer left behind.

        :meth:`put` writes entries to a ``mkstemp`` file and renames it
        into place; a worker killed between the two leaves the
        temporary behind forever (the atomic rename means it never
        becomes an entry — it just leaks disk).  Sweeping on open heals
        the directory; the age gate keeps a concurrently *live* writer
        in a sibling process safe."""
        swept = 0
        cutoff = time.time() - max_age_s
        try:
            names = os.listdir(self.directory)
        except OSError:
            return swept
        for name in names:
            if not name.endswith(".tmp"):
                continue
            path = os.path.join(self.directory, name)
            try:
                if os.path.getmtime(path) <= cutoff:
                    os.unlink(path)
                    swept += 1
            except OSError:
                pass  # racing sweeper or live writer won; fine either way
        return swept

    # -- keying --------------------------------------------------------------

    def key(self, text, **options):
        """Fingerprint ``text`` + ``options`` (see
        :func:`source_fingerprint`)."""
        return source_fingerprint(text, **options)

    # -- storage -------------------------------------------------------------

    def get(self, namespace, key):
        """The entry for ``(namespace, key)`` as a *fresh* object graph,
        or ``None`` on a miss.

        A snapshot that no longer unpickles — a writer killed mid-write
        before the atomic rename landed, a torn disk, a copied cache
        directory — is treated as a miss, not a crash: the bad entry is
        evicted (so the next :meth:`put` heals it) and counted under
        ``stats()["corrupt"]``."""
        location = (namespace, key)
        payload = self._memory.get(location)
        if payload is not None:
            self._memory.move_to_end(location)
        from_disk = False
        if payload is None and self.directory is not None:
            try:
                with open(self._path(namespace, key), "rb") as handle:
                    payload = handle.read()
            except OSError:
                payload = None
            else:
                from_disk = True
        if payload is None:
            self.misses += 1
            return None
        try:
            state = pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError):
            self._evict_corrupt(location)
            self.corrupt += 1
            self.misses += 1
            return None
        if from_disk:
            self._remember(namespace, key, payload)
        self.hits += 1
        return state

    def _evict_corrupt(self, location):
        """Drop a snapshot that failed to unpickle from both layers."""
        self._memory.pop(location, None)
        if self.directory is not None:
            try:
                os.unlink(self._path(*location))
            except OSError:
                pass

    def put(self, namespace, key, state):
        """Snapshot ``state`` (pickle now, so later mutation of the live
        object cannot leak into the cache) and store it."""
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        self._remember(namespace, key, payload)
        if self.directory is not None:
            path = self._path(namespace, key)
            handle, temp_path = tempfile.mkstemp(dir=self.directory,
                                                 suffix=".tmp")
            try:
                with os.fdopen(handle, "wb") as temp:
                    temp.write(payload)
                os.replace(temp_path, path)
            except OSError:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        self.stores += 1
        return payload

    def _remember(self, namespace, key, payload):
        memory = self._memory
        memory[(namespace, key)] = payload
        memory.move_to_end((namespace, key))
        while len(memory) > self.max_memory_entries:
            memory.popitem(last=False)

    def _path(self, namespace, key):
        safe = namespace.replace(os.sep, "_")
        return os.path.join(self.directory, f"{safe}-{key}.pickle")

    # -- introspection -------------------------------------------------------

    def __len__(self):
        return len(self._memory)

    @property
    def hit_rate(self):
        """Hits over lookups (0.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "swept_tmp": self.swept_tmp,
            "hit_rate": self.hit_rate,
            "memory_entries": len(self._memory),
            "directory": self.directory,
        }

    def clear(self):
        """Drop the in-memory layer and reset the counters (on-disk
        entries are left alone)."""
        self._memory.clear()
        self.hits = self.misses = self.stores = self.corrupt = 0
        self.swept_tmp = 0
