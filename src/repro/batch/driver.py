"""Batch compilation: fan a corpus of programs across workers.

:func:`compile_many` drives :func:`compile_one` over a list of
``(name, text)`` programs, either serially or on a
:class:`concurrent.futures.ProcessPoolExecutor`, and merges the
per-program outcomes into one :class:`BatchResult`:

* annotated sources and placement counts per program;
* per-program errors captured (one bad program never kills the corpus);
* cache hit/miss accounting against a shared
  :class:`~repro.batch.cache.PipelineCache`;
* optional per-program traces (deterministic
  :func:`~repro.obs.trace.stable_form` payloads) and hardened-pipeline
  degradation summaries.

Workers never share live pipeline objects — the cache stores pickled
pre-annotation snapshots and every compile annotates a private copy, so
the in-place AST mutation of
:func:`~repro.commgen.pipeline.annotate_prepared` cannot leak between
programs (``docs/scaling.md``).

Traces stay comparable between cached and uncached runs: the trace of
the prepare phase is captured once, on the cache miss, and stored (in
stable form) next to the snapshot; a hit replays the stored trace
instead of re-solving.  Since trace content is deterministic for a given
input, a warm cached run reports byte-identical stable traces to a cold
or uncached one — the equivalence suite pins this down.
"""

import os
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.batch.cache import PipelineCache, source_fingerprint
from repro.commgen.hardened import HardenedPipeline, ResourceBudget
from repro.commgen.pipeline import annotate_prepared, prepare_communication
from repro.core.kernel.incremental import IncrementalSolveMemo
from repro.graph.pipeline import analyzed_program_for
from repro.lang.printer import format_statement
from repro.obs.collector import TraceCollector, tracing
from repro.obs.trace import stable_form, trace_payload
from repro.util.errors import ReproError

#: Cache namespace for solved pre-annotation pipeline state.
PREPARED_NAMESPACE = "prepared"

#: Cache namespace for per-program Merkle interval fingerprints, keyed
#: by the plain :func:`source_fingerprint` of the text — the digest a
#: ``compile_delta`` request names as its ``base``.
MERKLE_NAMESPACE = "interval-merkle"

#: prepare_communication keyword defaults — also the full set of options
#: that participate in the content address of a "prepared" entry.
PREPARE_DEFAULTS = {
    "owner_computes": False,
    "postpass": True,
    "hoist_zero_trip": True,
    "after_jumps": "optimistic",
    "refine_sections": True,
    "split_irreducible": False,
    "max_splits": None,
    "check_paths": 150,
    "solver_rounds": None,
    "solver_backend": None,
}


def resolve_jobs(jobs):
    """The effective worker count for a requested ``jobs`` value.

    Positive values pass through; ``0`` (or anything non-positive) means
    "one worker per CPU" — the resolution shared by
    :func:`compile_many`, ``repro batch --jobs 0``, and the compile
    service's worker pool (:mod:`repro.service`)."""
    jobs = int(jobs)
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@dataclass
class BatchOptions:
    """Knobs of one batch run (picklable, shipped to pool workers).

    ``pipeline`` holds :func:`~repro.commgen.pipeline.
    prepare_communication` keyword overrides; unknown keys are rejected
    eagerly so typos fail fast rather than silently compiling with
    defaults."""

    split_messages: bool = True
    hardened: bool = False
    trace: bool = False
    pipeline: dict = field(default_factory=dict)

    def __post_init__(self):
        unknown = set(self.pipeline) - set(PREPARE_DEFAULTS)
        if unknown:
            raise ValueError(f"unknown pipeline option(s): {sorted(unknown)}")

    def prepare_kwargs(self):
        merged = dict(PREPARE_DEFAULTS)
        merged.update(self.pipeline)
        return merged


@dataclass
class CompiledProgram:
    """The outcome of compiling one program of the corpus."""

    name: str
    ok: bool
    annotated_source: Optional[str] = None
    reads: int = 0
    writes: int = 0
    cache_hit: bool = False
    duration_s: float = 0.0
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: hardened mode only: the rung that produced the placement
    rung: Optional[str] = None
    degraded: bool = False
    #: stable-form trace payload (``trace=True`` only)
    trace: Optional[dict] = None
    #: interval-memo accounting for cached compiles (whole-solve and
    #: fragment hits, write-verdict replays, changed-interval counts for
    #: deltas); ``None`` when no memo ran
    incremental: Optional[dict] = None

    def as_dict(self):
        return {
            "name": self.name,
            "ok": self.ok,
            "reads": self.reads,
            "writes": self.writes,
            "cache_hit": self.cache_hit,
            "duration_s": self.duration_s,
            "error": self.error,
            "error_type": self.error_type,
            "rung": self.rung,
            "degraded": self.degraded,
            "incremental": self.incremental,
            "annotated_source": self.annotated_source,
        }


class BatchResult:
    """Merged outcome of one :func:`compile_many` run."""

    def __init__(self, programs, elapsed_s, jobs, cache_stats=None):
        self.programs = programs
        self.elapsed_s = elapsed_s
        self.jobs = jobs
        self.cache_stats = cache_stats

    @property
    def ok_count(self):
        return sum(1 for p in self.programs if p.ok)

    @property
    def error_count(self):
        return sum(1 for p in self.programs if not p.ok)

    @property
    def cache_hits(self):
        return sum(1 for p in self.programs if p.cache_hit)

    @property
    def degraded_count(self):
        return sum(1 for p in self.programs if p.degraded)

    @property
    def programs_per_second(self):
        if self.elapsed_s <= 0:
            return float("inf")
        return len(self.programs) / self.elapsed_s

    def errors(self):
        return [p for p in self.programs if not p.ok]

    def summary(self):
        text = (f"{self.ok_count}/{len(self.programs)} programs ok in "
                f"{self.elapsed_s:.3f}s ({self.programs_per_second:.1f}/s, "
                f"jobs={self.jobs}, cache hits={self.cache_hits})")
        if self.error_count:
            text += f", {self.error_count} failed"
        if self.degraded_count:
            text += f", {self.degraded_count} degraded"
        return text

    def as_dict(self):
        return {
            "elapsed_s": self.elapsed_s,
            "jobs": self.jobs,
            "ok": self.ok_count,
            "errors": self.error_count,
            "cache_hits": self.cache_hits,
            "degraded": self.degraded_count,
            "programs_per_second": self.programs_per_second,
            "cache": self.cache_stats,
            "programs": [p.as_dict() for p in self.programs],
        }


# ---------------------------------------------------------------------------


def compile_one(name, text, cache=None, options=None):
    """Compile one program; never raises for per-program
    :class:`~repro.util.errors.ReproError` failures."""
    options = options if options is not None else BatchOptions()
    start = time.perf_counter()
    try:
        if options.hardened:
            compiled = _compile_hardened(name, text, options)
        else:
            compiled = _compile_plain(name, text, cache, options)
    except ReproError as error:
        compiled = CompiledProgram(name=name, ok=False, error=str(error),
                                   error_type=type(error).__name__)
    compiled.duration_s = time.perf_counter() - start
    return compiled


def _compile_plain(name, text, cache, options):
    kwargs = options.prepare_kwargs()
    prepared, prepare_trace, hit, incremental = _prepared_state(
        text, cache, options, kwargs)
    annotate_collector = TraceCollector() if options.trace else None
    if annotate_collector is not None:
        with tracing(annotate_collector):
            result = annotate_prepared(
                prepared, split_messages=options.split_messages)
    else:
        result = annotate_prepared(prepared,
                                   split_messages=options.split_messages)
    reads, writes = result.communication_count()
    trace = None
    if options.trace:
        trace = _merge_traces(prepare_trace,
                              stable_form(trace_payload(annotate_collector)))
    return CompiledProgram(name=name, ok=True,
                           annotated_source=result.annotated_source(),
                           reads=reads, writes=writes, cache_hit=hit,
                           trace=trace, incremental=incremental)


def _prepared_state(text, cache, options, kwargs):
    """The solved pre-annotation state for ``text``: a private cached
    copy when possible, freshly computed (and snapshotted) otherwise.

    Returns ``(prepared, trace, hit, incremental)``.  On the miss path
    with a cache, solves run through an
    :class:`~repro.core.kernel.incremental.IncrementalSolveMemo`, so a
    fresh text that shares structure with anything compiled before —
    edit traffic — replays whole solves, interval fragments, and write
    verdicts instead of recomputing them; ``incremental`` reports that
    accounting.  Tracing disables the memo: a replayed solve emits no
    solver events, and traces must stay byte-identical between cached
    and uncached runs."""
    if cache is not None:
        key = cache.key(text, trace=options.trace, **kwargs)
        entry = cache.get(PREPARED_NAMESPACE, key)
        if entry is not None:
            return entry["prepared"], entry["trace"], True, None
    # The frontend is built outside any trace scope (on both the hit and
    # the miss path it comes from untraced construction), so stable
    # traces compare equal between cached and uncached runs.
    analyzed = analyzed_program_for(
        text, cache=cache, split_irreducible=kwargs["split_irreducible"],
        max_splits=kwargs["max_splits"])
    memo = None
    if cache is not None and not options.trace:
        memo = IncrementalSolveMemo(cache)
    if options.trace:
        with tracing() as collector:
            prepared = prepare_communication(analyzed, **_without_frontend(kwargs))
        prepare_trace = stable_form(trace_payload(collector))
    else:
        prepared = prepare_communication(analyzed, memo=memo,
                                         **_without_frontend(kwargs))
        prepare_trace = None
    if cache is not None:
        cache.put(PREPARED_NAMESPACE, key,
                  {"prepared": prepared, "trace": prepare_trace})
        _store_interval_fingerprints(cache, text, prepared.analyzed)
    return (prepared, prepare_trace, False,
            dict(memo.stats) if memo is not None else None)


def _render_interval_node(node):
    """A node's own-level text for interval fingerprinting: the first
    rendered line of its statement (a loop header's body lines belong to
    the nested interval's fingerprint, not its own), or a kind tag for
    synthetic nodes."""
    if node.stmt is None:
        return f"<{node.kind.value}:{node.name}>"
    lines = format_statement(node.stmt)
    return lines[0] if lines else f"<{node.kind.value}>"


def _store_interval_fingerprints(cache, text, analyzed):
    """Record the program's Merkle interval fingerprints under its plain
    source digest, so a later ``compile_delta`` naming this text as its
    base can report which intervals the edit changed."""
    forest = analyzed.ifg.forest
    fingerprints = forest.interval_fingerprints(_render_interval_node)
    cache.put(MERKLE_NAMESPACE, source_fingerprint(text),
              sorted(fingerprints.values()))


def compile_delta(name, text, cache, options=None, base_digest=None):
    """Incrementally recompile an edited program against a warm cache.

    ``text`` is the *edited* source; ``base_digest`` (optional) is the
    plain :func:`~repro.batch.cache.source_fingerprint` of the base text
    a previous compile warmed the cache with.  The compile itself is
    :func:`compile_one` — incremental replay is content-addressed, so it
    needs no base entry to splice from, only a warm cache — but the base
    digest adds the delta diagnostics: how many intervals the edit
    changed versus the base's Merkle fingerprints.  The result is
    byte-identical to a cold :func:`compile_one` of the same text.
    """
    if cache is None:
        raise ValueError("compile_delta requires a PipelineCache to replay "
                         "interval solves from")
    options = options if options is not None else BatchOptions()
    compiled = compile_one(name, text, cache, options)
    incremental = dict(compiled.incremental or {})
    incremental["digest"] = source_fingerprint(text)
    incremental["base"] = base_digest
    if compiled.ok and base_digest:
        base_fps = cache.get(MERKLE_NAMESPACE, base_digest)
        edited_fps = cache.get(MERKLE_NAMESPACE, incremental["digest"])
        if isinstance(base_fps, list) and isinstance(edited_fps, list):
            known = set(base_fps)
            incremental["intervals_total"] = len(edited_fps)
            incremental["intervals_changed"] = sum(
                1 for fp in edited_fps if fp not in known)
    compiled.incremental = incremental
    return compiled


def _without_frontend(kwargs):
    """Prepare kwargs minus the two the frontend already consumed
    (``prepare_communication`` ignores them for a pre-analyzed input,
    but keeping them out makes that explicit)."""
    rest = dict(kwargs)
    rest.pop("split_irreducible")
    rest.pop("max_splits")
    return rest


def _compile_hardened(name, text, options):
    budget = ResourceBudget(
        check_paths=options.prepare_kwargs()["check_paths"],
        solver_rounds=options.prepare_kwargs()["solver_rounds"] or 64,
    )
    pipeline = HardenedPipeline(
        budget=budget,
        owner_computes=options.prepare_kwargs()["owner_computes"],
        split_messages=options.split_messages,
        solver_backend=options.prepare_kwargs()["solver_backend"],
    )
    if options.trace:
        with tracing() as collector:
            hardened = pipeline.run(text)
        trace = stable_form(trace_payload(collector))
    else:
        hardened = pipeline.run(text)
        trace = None
    result = hardened.result
    reads = writes = 0
    if hasattr(result, "communication_count"):
        reads, writes = result.communication_count()
    return CompiledProgram(name=name, ok=True,
                           annotated_source=hardened.annotated_source(),
                           reads=reads, writes=writes,
                           rung=hardened.report.rung,
                           degraded=hardened.report.degraded,
                           trace=trace)


def _merge_traces(first, second):
    """Concatenate two stable trace payloads (events append, counters
    sum) — used to join the prepare-phase and annotate-phase traces into
    one per-program payload."""
    if first is None:
        return second
    if second is None:
        return first
    counters = {c: dict(bucket) for c, bucket in first["counters"].items()}
    for counter, bucket in second["counters"].items():
        merged = counters.setdefault(counter, {})
        for key, n in bucket.items():
            merged[key] = merged.get(key, 0) + n
    return {
        "schema": first["schema"],
        "events": list(first["events"]) + list(second["events"]),
        "counters": counters,
    }


# -- the worker pool --------------------------------------------------------

#: Per-process cache instances, keyed by directory (None = memory-only).
#: Worker processes keep them across tasks, so duplicates within one
#: worker's share of the corpus hit even without a disk cache.
_worker_caches = {}


def _worker_cache(cache_dir, use_cache):
    if not use_cache:
        return None
    cache = _worker_caches.get(cache_dir)
    if cache is None:
        cache = PipelineCache(directory=cache_dir)
        _worker_caches[cache_dir] = cache
    return cache


def _pool_compile(item, cache_dir, use_cache, options):
    name, text = item
    return compile_one(name, text, _worker_cache(cache_dir, use_cache),
                       options)


def _pool_compile_delta(item, cache_dir, use_cache, options, base_digest):
    name, text = item
    # compile_delta needs a cache to replay from; a worker without one
    # (memory-only service config) degrades to its private per-process
    # cache — still correct, just cold until that worker warms it.
    cache = (_worker_cache(cache_dir, use_cache)
             or _worker_cache(None, True))
    return compile_delta(name, text, cache, options=options,
                         base_digest=base_digest)


def compile_many(sources, jobs=1, cache=None, options=None):
    """Compile a corpus; return a :class:`BatchResult`.

    * ``sources`` — an iterable of ``(name, text)`` pairs or a
      ``{name: text}`` mapping; result order follows input order.
    * ``jobs`` — worker process count.  ``1`` compiles serially in this
      process (using ``cache`` directly); ``0`` means one worker per CPU
      (:func:`resolve_jobs`); higher values fan out over a
      :class:`~concurrent.futures.ProcessPoolExecutor`.  A cache with a
      ``directory`` is then shared by all workers through the
      filesystem; a memory-only cache degrades to one private cache per
      worker process (hits still happen within a worker, warmth is not
      shared across runs).
    * ``options`` — a :class:`BatchOptions` (or ``None`` for defaults).
    """
    items = list(sources.items()) if isinstance(sources, dict) else list(sources)
    options = options if options is not None else BatchOptions()
    jobs = resolve_jobs(jobs)
    start = time.perf_counter()

    if jobs == 1 or len(items) <= 1:
        programs = [compile_one(name, text, cache, options)
                    for name, text in items]
        elapsed = time.perf_counter() - start
        stats = cache.stats() if cache is not None else None
        return BatchResult(programs, elapsed, jobs=1, cache_stats=stats)

    from concurrent.futures import ProcessPoolExecutor
    from functools import partial

    cache_dir = cache.directory if cache is not None else None
    worker = partial(_pool_compile, cache_dir=cache_dir,
                     use_cache=cache is not None, options=options)
    chunksize = max(1, len(items) // (jobs * 4))
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            programs = list(pool.map(worker, items, chunksize=chunksize))
    except (OSError, ImportError):
        # No usable multiprocessing primitives (restricted sandboxes):
        # degrade to a serial run rather than failing the corpus.
        programs = [compile_one(name, text, cache, options)
                    for name, text in items]
        jobs = 1
    elapsed = time.perf_counter() - start
    stats = cache.stats() if cache is not None else None
    if stats is not None and jobs > 1:
        # The parent's counters saw nothing; reconstruct lookup totals
        # from the per-program hit flags the workers reported.
        hits = sum(1 for p in programs if p.cache_hit)
        lookups = sum(1 for p in programs if p.ok)
        stats = dict(stats)
        stats.update(hits=hits, misses=lookups - hits,
                     hit_rate=hits / lookups if lookups else 0.0)
    return BatchResult(programs, elapsed, jobs=jobs, cache_stats=stats)
