"""Machine cost model."""

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """Cost parameters of the simulated distributed-memory machine.

    * ``latency`` — fixed wire time between a send and the earliest
      possible completion of its receive (the part latency hiding can
      overlap with work);
    * ``time_per_element`` — transfer cost per array element (inverse
      bandwidth);
    * ``message_overhead`` — CPU cost of issuing one message (paid at
      the sender, never hidable) — this is what makes N element
      messages so much worse than one vectorized message;
    * ``work_unit`` — cost of one statement of computation.
    """

    latency: float = 100.0
    time_per_element: float = 1.0
    message_overhead: float = 10.0
    work_unit: float = 1.0

    def transfer_time(self, elements):
        """Wire time of one message carrying ``elements`` elements."""
        return self.latency + self.time_per_element * elements
