"""Machine cost model."""

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """Cost parameters of the simulated distributed-memory machine.

    * ``latency`` — fixed wire time between a send and the earliest
      possible completion of its receive (the part latency hiding can
      overlap with work);
    * ``time_per_element`` — transfer cost per array element (inverse
      bandwidth);
    * ``message_overhead`` — CPU cost of issuing one message (paid at
      the sender, never hidable) — this is what makes N element
      messages so much worse than one vectorized message;
    * ``work_unit`` — cost of one statement of computation.
    """

    latency: float = 100.0
    time_per_element: float = 1.0
    message_overhead: float = 10.0
    work_unit: float = 1.0

    def transfer_time(self, elements):
        """Wire time of one message carrying ``elements`` elements."""
        return self.latency + self.time_per_element * elements


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-timeout protocol for lossy runs (``FaultPlan``).

    A receive whose message was lost waits until ``timeout`` clock units
    after the send was issued, then retransmits (paying the message
    overhead again) with the timeout multiplied by ``backoff`` — classic
    exponential backoff.  After ``max_retries`` retransmissions a still
    lost message raises
    :class:`~repro.util.errors.CommunicationTimeoutError`.
    """

    max_retries: int = 6
    timeout: float = 400.0
    backoff: float = 2.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout <= 0:
            raise ValueError("timeout must be > 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
