"""Symbolic execution of (annotated) mini-Fortran programs.

The simulator interprets the AST under concrete bindings (``n=64``),
advancing a clock: each computational statement costs one work unit,
each ``*_Send`` issues a message whose transfer completes after the
machine's latency + per-element time, and each ``*_Recv`` blocks until
its matching message has arrived — waiting time is *exposed* latency,
the rest was hidden behind computation.  Atomic communication (no
phase) exposes its full transfer time.

Branch conditions that cannot be evaluated arithmetically (``test``,
``test(i)``) are resolved by a :class:`ConditionPolicy`.

With a :class:`~repro.machine.faults.FaultPlan`, each transmission rolls
for loss, duplication, delay jitter, and node crashes; lost messages are
recovered by the :class:`~repro.machine.model.RetryPolicy`'s
timeout-and-exponential-backoff protocol, and the retries, timeouts, and
waiting time are reported in :class:`ExecutionMetrics` (see
``docs/robustness.md``).
"""

import hashlib
import json
import random
from collections import Counter

from repro.lang import ast
from repro.lang.parser import parse as parse_program
from repro.machine.metrics import ExecutionMetrics
from repro.machine.model import MachineModel, RetryPolicy
from repro.obs.collector import current_collector
from repro.util.errors import AnalysisError, CommunicationTimeoutError


class ConditionPolicy:
    """Resolves opaque branch conditions.

    ``mode`` is ``"always"`` (True), ``"never"`` (False), or ``"random"``
    with a seeded RNG and a truth ``probability``.
    """

    def __init__(self, mode="never", seed=0, probability=0.5):
        self.mode = mode
        self.probability = probability
        self._rng = random.Random(seed)

    def decide(self, condition, env):
        if self.mode == "always":
            return True
        if self.mode == "never":
            return False
        return self._rng.random() < self.probability


class _Jump(Exception):
    """Control transfer to a numeric label."""

    def __init__(self, label):
        self.label = label


class Simulator:
    """Executes one program under one machine model."""

    def __init__(self, program, machine=None, bindings=None, policy=None,
                 faults=None, retry=None):
        if isinstance(program, str):
            program = parse_program(program)
        self.program = program
        self.machine = machine if machine is not None else MachineModel()
        self.env = dict(bindings or {})
        self.policy = policy if policy is not None else ConditionPolicy()
        self.retry = retry if retry is not None else RetryPolicy()
        self.metrics = ExecutionMetrics()
        self.clock = 0.0
        self._faults = faults.start() if faults is not None else None
        self._outstanding = []  # (kind, arrays, ready_time, volume)
        self._obs = current_collector()
        self._message_sequence = 0
        #: (kind, canonical section) pairs delivered to this node, in
        #: completion order — the observable machine state alongside
        #: ``env`` (see :meth:`machine_state`)
        self.delivered = []
        self._load_parameters()

    def _load_parameters(self):
        for stmt in self.program.body:
            if isinstance(stmt, ast.ParameterDef):
                self.env.setdefault(stmt.name, self._eval(stmt.value))

    # -- driving ------------------------------------------------------------

    def run(self):
        """Execute the program; return the collected metrics."""
        try:
            self._execute_body(self.program.executables())
        except _Jump as jump:
            raise AnalysisError(f"goto to unknown label {jump.label}") from None
        self._finish_run()
        return self.metrics

    def _finish_run(self):
        """Emit the end-of-run occupancy event (shared with the
        schedule runner, whose ``run`` drives tasks, not the AST)."""
        if self._obs.enabled:
            self._obs.event("machine", "run", clock=self.clock,
                            makespan=self.metrics.total_time,
                            **self.metrics.occupancy())

    def _execute_body(self, body):
        index = 0
        while index < len(body):
            stmt = body[index]
            try:
                self._execute(stmt)
            except _Jump as jump:
                target = self._find_label(body, jump.label)
                if target is None:
                    raise
                index = target
                continue
            index += 1

    @staticmethod
    def _find_label(body, label):
        for position, stmt in enumerate(body):
            if stmt.label == label:
                return position
        return None

    # -- statements -----------------------------------------------------------

    def _execute(self, stmt):
        if isinstance(stmt, ast.Assign):
            self._work()
        elif isinstance(stmt, ast.Continue):
            pass
        elif isinstance(stmt, ast.Do):
            self._execute_do(stmt)
        elif isinstance(stmt, ast.If):
            if self._condition(stmt.cond):
                self._execute_body(stmt.then_body)
            else:
                self._execute_body(stmt.else_body)
        elif isinstance(stmt, ast.IfGoto):
            if self._condition(stmt.cond):
                raise _Jump(stmt.target)
        elif isinstance(stmt, ast.Goto):
            raise _Jump(stmt.target)
        elif isinstance(stmt, ast.Comm):
            self._communicate(stmt)
        elif isinstance(stmt, (ast.Declaration, ast.ParameterDef, ast.Distribute)):
            pass
        else:
            raise AnalysisError(f"cannot simulate {stmt!r}")

    def _execute_do(self, stmt):
        lo = self._eval(stmt.lo)
        hi = self._eval(stmt.hi)
        step = self._eval(stmt.step)
        if step <= 0:
            raise AnalysisError("non-positive do step")
        saved = self.env.get(stmt.var)
        value = lo
        try:
            while value <= hi:
                self.env[stmt.var] = value
                self._execute_body(stmt.body)
                value += step
        finally:
            if saved is None:
                self.env.pop(stmt.var, None)
            else:
                self.env[stmt.var] = saved

    def _work(self):
        self.clock += self.machine.work_unit
        self.metrics.work_time += self.machine.work_unit

    # -- communication -----------------------------------------------------------

    def _communicate(self, comm):
        if comm.phase == "send":
            self._issue(comm.kind, comm.args)
        elif comm.phase == "recv":
            self._complete(comm.kind, comm.args)
        else:  # atomic: issue and wait immediately
            self._issue(comm.kind, comm.args)
            self._complete(comm.kind, comm.args)

    def _issue(self, kind, args):
        """One message carrying all of ``args``; each section becomes an
        outstanding entry so receives can wait on any subset."""
        sections = [(arg, self._descriptor_size(arg),
                     self.canonical_argument(arg)) for arg in args]
        volume = sum(size for _, size, _ in sections)
        overhead = self.machine.message_overhead
        self.clock += overhead
        self.metrics.overhead_time += overhead
        self.metrics.record_message(kind, volume)
        # all sections of one message share its wire time; the
        # exposed/hidden accounting happens once per message
        self._message_sequence += 1
        message = {"kind": kind, "volume": volume, "accounted": False,
                   "id": self._message_sequence}
        if self._obs.enabled:
            self._obs.event("machine", "send", message=message["id"],
                            kind=kind, volume=volume, clock=self.clock,
                            sections=len(args))
            self._obs.count("machine", "send")
        self._transmit(message)
        for arg, _, canonical in sections:
            self._outstanding.append({
                "kind": kind,
                "arg": arg,
                "canonical": canonical,
                "array": arg.split("(", 1)[0],
                "message": message,
            })

    def _transmit(self, message):
        """One wire attempt for ``message``, rolling the fault plan."""
        transfer = self.machine.transfer_time(message["volume"])
        dropped = duplicated = crashed = False
        delay = 0.0
        if self._faults is not None:
            decision = self._faults.roll(self.clock)
            crashed = decision.crashed
            if crashed:
                self.metrics.crashes += 1
            if decision.delay:
                delay = decision.delay
                transfer += delay
                self.metrics.fault_delay += delay
            dropped = decision.dropped
            if dropped:
                self.metrics.dropped_messages += 1
            elif decision.duplicated:
                # the receiver discards the second copy: count it, no
                # effect on pairing or timing
                duplicated = True
                self.metrics.duplicated_messages += 1
        message.update(issued_at=self.clock, transfer=transfer,
                       ready=self.clock + transfer, dropped=dropped)
        self.metrics.record_transfer(self.clock, message["ready"])
        obs = self._obs
        if obs.enabled:
            obs.event("machine", "transmit", message=message["id"],
                      clock=self.clock, transfer=transfer,
                      ready=message["ready"], dropped=dropped,
                      duplicated=duplicated, crashed=crashed, jitter=delay)
            if dropped:
                obs.count("machine", "dropped")
            if duplicated:
                obs.count("machine", "duplicated")
            if crashed:
                obs.count("machine", "crashed")

    def _await_delivery(self, message):
        """Retry ``message`` until a transmission survives the fault
        plan (timeout → exponential backoff → retransmit, paying the
        message overhead again), or the retry budget is exhausted."""
        obs = self._obs
        attempts = 0
        timeout = self.retry.timeout
        while message["dropped"]:
            deadline = message["issued_at"] + timeout
            wait = max(0.0, deadline - self.clock)
            self.clock += wait
            self.metrics.timeouts += 1
            self.metrics.timeout_wait += wait
            self.metrics.exposed_latency += wait
            attempts += 1
            if obs.enabled:
                obs.event("machine", "timeout", message=message["id"],
                          clock=self.clock, wait=wait, attempt=attempts)
                obs.count("machine", "timeout")
            if attempts > self.retry.max_retries:
                raise CommunicationTimeoutError(
                    f"{message['kind']} message of {message['volume']:.0f} "
                    f"elements still lost after {self.retry.max_retries} "
                    f"retries"
                )
            self.metrics.retries += 1
            if obs.enabled:
                obs.event("machine", "retry", message=message["id"],
                          clock=self.clock, attempt=attempts,
                          next_timeout=timeout * self.retry.backoff)
                obs.count("machine", "retry")
            overhead = self.machine.message_overhead
            self.clock += overhead
            self.metrics.overhead_time += overhead
            self._transmit(message)
            timeout *= self.retry.backoff

    def _complete(self, kind, args):
        """Wait for the outstanding sections named by ``args``.

        Matching is exact on the rendered section first, then by array
        name (partial sections like ``y(a(1:i))`` pair with their
        full-range counterpart).  A receive with no matching send at all
        is an imbalance and raises."""
        matched = []
        for arg in args:
            entry = self._find_entry(kind, arg)
            if entry is not None:
                self._outstanding.remove(entry)
                matched.append(entry)
                self.delivered.append((kind, entry["canonical"]))
        if not matched:
            raise AnalysisError(
                f"receive of {kind} {sorted(args)} without an outstanding send"
            )
        for entry in matched:
            message = entry["message"]
            self._await_delivery(message)
            exposed = max(0.0, message["ready"] - self.clock)
            self.clock += exposed
            if not message["accounted"]:
                message["accounted"] = True
                self.metrics.exposed_latency += exposed
                self.metrics.hidden_latency += message["transfer"] - exposed
                if self._obs.enabled:
                    self._obs.event(
                        "machine", "recv", message=message["id"], kind=kind,
                        clock=self.clock, exposed=exposed,
                        hidden=message["transfer"] - exposed)
                    self._obs.count("machine", "recv")

    def _find_entry(self, kind, arg):
        """The outstanding entry a receive of ``arg`` pairs with.

        Three deterministic tiers: (1) exact rendered-text match;
        (2) same concrete section under the current environment, so
        ``x(1:n)`` at ``n=64`` pairs with ``x(1:64)`` rather than with
        whichever partial section of ``x`` was sent first; (3) the
        first-inserted entry of the same array (partial sections like
        ``y(a(1:i))`` pair with their full-range counterpart)."""
        array = arg.split("(", 1)[0]
        candidates = [entry for entry in self._outstanding
                      if entry["kind"] == kind and entry["array"] == array]
        for entry in candidates:
            if entry["arg"] == arg:
                return entry
        canonical = self.canonical_argument(arg)
        for entry in candidates:
            if entry["canonical"] == canonical:
                return entry
        return candidates[0] if candidates else None

    # -- expressions -----------------------------------------------------------

    def _eval(self, expr):
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Var):
            if expr.name not in self.env:
                raise AnalysisError(f"unbound variable {expr.name!r}")
            return self.env[expr.name]
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left)
            right = self._eval(expr.right)
            operations = {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right,
                "<": lambda: left < right,
                ">": lambda: left > right,
                "<=": lambda: left <= right,
                ">=": lambda: left >= right,
                "==": lambda: left == right,
                "!=": lambda: left != right,
            }
            return operations[expr.op]()
        raise AnalysisError(f"cannot evaluate {expr!r}")

    def _condition(self, cond):
        try:
            return bool(self._eval(cond))
        except AnalysisError:
            return self.policy.decide(cond, self.env)

    def _descriptor_size(self, arg):
        """Element count of a rendered section like ``x(11:n + 10)``,
        ``x(a(1:i))``, or ``g(1:n, 1:m)`` under the current environment
        (ranges multiply across dimensions)."""
        expr = _parse_argument(arg)
        if not isinstance(expr, ast.ArrayRef):
            return 1
        total = 1
        for subscript in expr.subscripts:
            rng = _innermost_range(subscript)
            if rng is None:
                continue  # a point dimension
            lo = self._eval(rng.lo)
            hi = self._eval(rng.hi)
            total *= max(0, hi - lo + 1)
        return total

    def canonical_argument(self, arg):
        """``arg`` with every subscript evaluated under the current
        environment: ``x(11:n + 10)`` at ``n=32`` becomes ``x(11:42)``.
        Unevaluable descriptors are returned unchanged."""
        try:
            expr = _parse_argument(arg)
            return self._canonical_expr(expr)
        except Exception:
            return arg

    def _canonical_expr(self, expr):
        if isinstance(expr, ast.RangeExpr):
            return f"{self._eval(expr.lo)}:{self._eval(expr.hi)}"
        if isinstance(expr, ast.ArrayRef):
            inner = ", ".join(self._canonical_expr(s) for s in expr.subscripts)
            return f"{expr.name}({inner})"
        return str(self._eval(expr))

    # -- observable state ------------------------------------------------------

    def machine_state(self):
        """The observable machine state after a run, in a canonical
        JSON-able form: the final environment plus the multiset of
        delivered elements per (kind, array) and any still-outstanding
        sections.  Two runs of the same program — however their
        communication was scheduled, coalesced, or split — must agree
        on this."""
        delivered = {}
        for kind, canonical in self.delivered:
            array, elements = argument_elements(canonical)
            bucket = delivered.setdefault(f"{kind} {array}", Counter())
            bucket.update(elements)
        outstanding = Counter()
        for entry in self._outstanding:
            array, elements = argument_elements(entry["canonical"])
            outstanding.update((f"{entry['kind']} {array}", element)
                               for element in elements)
        return {
            "env": {name: self.env[name] for name in sorted(self.env)},
            "delivered": {
                key: sorted(bucket.items())
                for key, bucket in sorted(delivered.items())
            },
            "outstanding": sorted(outstanding.items()),
        }

    def state_digest(self):
        """Stable hash of :meth:`machine_state` for quick comparison."""
        payload = json.dumps(self.machine_state(), sort_keys=True,
                             default=str)
        return hashlib.sha256(payload.encode()).hexdigest()


def argument_elements(canonical):
    """The concrete element keys a canonical section descriptor
    delivers: ``(array, keys)``.  A one-dimensional numeric range
    explodes into its indices so that split chunks and their coalesced
    union compare equal; points become index tuples; anything else
    (indirect sections, multi-dimensional ranges) stays one opaque
    token — transformations never restructure those."""
    array = canonical.split("(", 1)[0].strip()
    try:
        expr = _parse_argument(canonical)
    except Exception:
        return array, (canonical,)
    if not isinstance(expr, ast.ArrayRef):
        return array, (canonical,)
    subscripts = expr.subscripts
    if (len(subscripts) == 1 and isinstance(subscripts[0], ast.RangeExpr)
            and isinstance(subscripts[0].lo, ast.Num)
            and isinstance(subscripts[0].hi, ast.Num)):
        lo, hi = subscripts[0].lo.value, subscripts[0].hi.value
        return array, tuple(str(i) for i in range(lo, hi + 1))
    if all(isinstance(s, ast.Num) for s in subscripts):
        return array, (",".join(str(s.value) for s in subscripts),)
    return array, (canonical,)


def _parse_argument(text):
    program = parse_program(f"__v = {text}")
    return program.body[0].value


def _innermost_range(expr):
    if isinstance(expr, ast.RangeExpr):
        return expr
    if isinstance(expr, ast.ArrayRef):
        for subscript in expr.subscripts:
            found = _innermost_range(subscript)
            if found is not None:
                return found
    return None


def simulate(program, machine=None, bindings=None, policy=None, faults=None,
             retry=None):
    """Convenience wrapper: run ``program`` and return its metrics.

    ``faults`` is an optional :class:`~repro.machine.faults.FaultPlan`;
    ``retry`` the :class:`~repro.machine.model.RetryPolicy` governing
    recovery from injected losses (defaults apply when omitted).
    """
    return Simulator(program, machine, bindings, policy, faults, retry).run()
