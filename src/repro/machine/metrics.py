"""Execution metrics collected by the simulator."""

from dataclasses import dataclass, field


@dataclass
class ExecutionMetrics:
    """What one simulated run cost.

    * ``messages`` — number of messages issued (sends + atomic ops);
    * ``volume`` — total elements transferred;
    * ``work_time`` — computation time;
    * ``overhead_time`` — per-message CPU overhead;
    * ``exposed_latency`` — transfer time the processor actually waited
      for (a receive that arrived before its data); timeout waits on
      lost messages count here too — they are pure stall;
    * ``hidden_latency`` — transfer time overlapped with computation;
    * ``total_time`` — work + overhead + exposed latency.

    Fault-injection runs (a ``FaultPlan`` was given) additionally fill:

    * ``retries`` — messages retransmitted after a timeout;
    * ``timeouts`` — timeouts that fired (>= retries; the last timeout
      of an exhausted receive has no matching retry);
    * ``timeout_wait`` — the part of ``exposed_latency`` spent waiting
      for timeouts to fire;
    * ``dropped_messages`` / ``duplicated_messages`` / ``crashes`` —
      injected fault counts;
    * ``fault_delay`` — total jitter added to transfer times.

    Channel occupancy: every wire attempt records its ``(start, end)``
    interval in ``transfers``, from which :attr:`wire_busy_time` (union
    of intervals — the wall-clock span the channel carried at least one
    message), :attr:`wire_idle_time`, :attr:`peak_in_flight`, and
    :attr:`overlap_ratio` (the fraction of transfer time hidden behind
    computation) derive.
    """

    messages: int = 0
    volume: float = 0.0
    work_time: float = 0.0
    overhead_time: float = 0.0
    exposed_latency: float = 0.0
    hidden_latency: float = 0.0
    retries: int = 0
    timeouts: int = 0
    timeout_wait: float = 0.0
    dropped_messages: int = 0
    duplicated_messages: int = 0
    crashes: int = 0
    fault_delay: float = 0.0
    #: messages per communication kind ("read", "write", "prefetch", …)
    messages_by_kind: dict = field(default_factory=dict)
    volume_by_kind: dict = field(default_factory=dict)
    #: wire attempts as (start, end) clock intervals (retransmissions
    #: and dropped attempts included — they occupied the channel too)
    transfers: list = field(default_factory=list)

    def record_message(self, kind, volume):
        self.messages += 1
        self.volume += volume
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + 1
        self.volume_by_kind[kind] = self.volume_by_kind.get(kind, 0.0) + volume

    def record_transfer(self, start, end):
        self.transfers.append((start, end))

    @property
    def wire_time(self):
        """Total transfer time summed over attempts (overlaps counted
        once per message)."""
        return sum(end - start for start, end in self.transfers)

    @property
    def wire_busy_time(self):
        """Wall-clock time the channel carried at least one message
        (union of the transfer intervals)."""
        busy = 0.0
        edge = None
        for start, end in sorted(self.transfers):
            if edge is None or start > edge:
                busy += end - start
                edge = end
            elif end > edge:
                busy += end - edge
                edge = end
        return busy

    @property
    def peak_in_flight(self):
        """Maximum number of simultaneously in-flight messages."""
        events = sorted((t, delta) for start, end in self.transfers
                        for t, delta in ((start, 1), (end, -1)))
        peak = level = 0
        for _, delta in events:
            level += delta
            peak = max(peak, level)
        return peak

    @property
    def wire_idle_time(self):
        """Makespan minus wire-busy time (never negative)."""
        return max(0.0, self.total_time - self.wire_busy_time)

    @property
    def overlap_ratio(self):
        """Fraction of transfer latency hidden behind computation."""
        total = self.hidden_latency + self.exposed_latency
        if total <= 0:
            return 0.0
        return self.hidden_latency / total

    def occupancy(self):
        """Channel-occupancy accounting as a flat dict (what ``repro
        profile`` and the ``machine/run`` obs event surface)."""
        return {
            "wire_time": self.wire_time,
            "wire_busy_time": self.wire_busy_time,
            "wire_idle_time": self.wire_idle_time,
            "peak_in_flight": self.peak_in_flight,
            "overlap_ratio": self.overlap_ratio,
        }

    @property
    def total_time(self):
        return self.work_time + self.overhead_time + self.exposed_latency

    @property
    def comm_time(self):
        return self.overhead_time + self.exposed_latency

    def speedup_over(self, other):
        """How much faster this run is than ``other`` (>1 is better).

        Two zero-cost runs are equally fast — 0/0 compares as 1.0, not
        infinity; only a zero-cost run against a costly one is
        infinitely faster."""
        if self.total_time == 0:
            return 1.0 if other.total_time == 0 else float("inf")
        return other.total_time / self.total_time

    @property
    def faults_observed(self):
        """Whether any fault-injection counter is nonzero."""
        return bool(self.retries or self.timeouts or self.dropped_messages
                    or self.duplicated_messages or self.crashes
                    or self.fault_delay)

    def summary(self):
        text = (
            f"messages={self.messages} volume={self.volume:.0f} "
            f"work={self.work_time:.0f} overhead={self.overhead_time:.0f} "
            f"exposed={self.exposed_latency:.0f} hidden={self.hidden_latency:.0f} "
            f"total={self.total_time:.0f}"
        )
        if self.faults_observed:
            text += (
                f" retries={self.retries} timeouts={self.timeouts} "
                f"dropped={self.dropped_messages} "
                f"duplicated={self.duplicated_messages} "
                f"crashes={self.crashes} "
                f"timeout_wait={self.timeout_wait:.0f}"
            )
        return text
