"""Seeded fault injection for the machine simulator.

A :class:`FaultPlan` is a frozen, seeded description of how unreliable
the simulated machine is.  Per issued message the plan rolls (in a fixed
order, so runs are reproducible):

* **crash** — with ``crash_probability`` the owning node goes down for
  ``crash_duration`` clock units; every message issued while a crash
  window is open is lost;
* **drop** — with ``drop_probability`` the message is lost in transit
  (the send completes locally, nothing ever arrives);
* **duplication** — with ``duplicate_probability`` the message is
  delivered twice; the receiver discards the second copy, so
  duplication costs wire traffic but never corrupts pairing;
* **delay jitter** — a uniform extra wire delay in
  ``[0, delay_jitter]`` is added to the transfer time.

The plan itself is immutable configuration; :meth:`FaultPlan.start`
returns the mutable per-run :class:`FaultState` holding the RNG and the
crash window, so one plan can drive many independent, identical runs
(same seed → same faults → same metrics).
"""

from dataclasses import dataclass, field

import random

from repro.util.errors import FaultSpecError


@dataclass(frozen=True)
class FaultDecision:
    """What the plan decided for one transmission attempt."""

    dropped: bool = False
    duplicated: bool = False
    delay: float = 0.0
    crashed: bool = False  # a new crash window opened at this roll


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault configuration (see module docstring)."""

    seed: int = 0
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    delay_jitter: float = 0.0
    crash_probability: float = 0.0
    crash_duration: float = 200.0

    #: spec keys accepted by :meth:`parse`, mapped to field names
    SPEC_KEYS = {
        "seed": "seed",
        "drop": "drop_probability",
        "dup": "duplicate_probability",
        "jitter": "delay_jitter",
        "crash": "crash_probability",
        "downtime": "crash_duration",
    }

    def __post_init__(self):
        for name in ("drop_probability", "duplicate_probability",
                     "crash_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultSpecError(f"{name} must be in [0, 1], got {value}")
        if self.delay_jitter < 0 or self.crash_duration < 0:
            raise FaultSpecError("delay_jitter and crash_duration must be >= 0")

    @classmethod
    def parse(cls, spec):
        """Build a plan from a CLI spec like ``"drop=0.2,jitter=50,seed=7"``.

        Accepted keys: ``drop``, ``dup``, ``jitter``, ``crash``,
        ``downtime``, ``seed``.  Raises :class:`FaultSpecError` on
        unknown keys or malformed values.
        """
        values = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in cls.SPEC_KEYS:
                known = ", ".join(sorted(cls.SPEC_KEYS))
                raise FaultSpecError(
                    f"bad fault spec item {part!r} (known keys: {known})")
            try:
                number = int(raw) if key == "seed" else float(raw)
            except ValueError:
                raise FaultSpecError(
                    f"bad fault spec value {raw!r} for {key!r}") from None
            values[cls.SPEC_KEYS[key]] = number
        return cls(**values)

    @property
    def active(self):
        """Whether this plan can inject anything at all."""
        return bool(self.drop_probability or self.duplicate_probability
                    or self.delay_jitter or self.crash_probability)

    def start(self):
        """A fresh per-run :class:`FaultState` (deterministic per seed)."""
        return FaultState(self)


@dataclass
class FaultState:
    """Mutable per-run fault injection state."""

    plan: FaultPlan
    crash_until: float = 0.0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self):
        self._rng = random.Random(self.plan.seed)

    def roll(self, clock):
        """Decide the fate of one message issued at time ``clock``."""
        plan = self.plan
        crashed = False
        if (plan.crash_probability and clock >= self.crash_until
                and self._rng.random() < plan.crash_probability):
            self.crash_until = clock + plan.crash_duration
            crashed = True
        dropped = clock < self.crash_until
        if not dropped and plan.drop_probability:
            dropped = self._rng.random() < plan.drop_probability
        duplicated = False
        if not dropped and plan.duplicate_probability:
            duplicated = self._rng.random() < plan.duplicate_probability
        delay = self._rng.uniform(0.0, plan.delay_jitter) if plan.delay_jitter else 0.0
        return FaultDecision(dropped=dropped, duplicated=duplicated,
                             delay=delay, crashed=crashed)
