"""Distributed-memory machine simulator.

The paper's evaluation reasons about message counts, volume, and latency
hiding (Figure 2: N element messages vs. one vectorized message whose
latency hides behind the ``i`` loop).  The authors ran on a real
distributed-memory machine; we substitute a symbolic executor that runs
annotated programs under a simple cost model and reports exactly those
quantities (see DESIGN.md, substitutions).

* :class:`repro.machine.model.MachineModel` — latency / per-element
  cost / per-message overhead;
* :class:`repro.machine.executor.Simulator` — executes an annotated
  program under concrete bindings, pairing sends with receives;
* :class:`repro.machine.metrics.ExecutionMetrics` — messages, volume,
  work, exposed vs. hidden latency, total time;
* :class:`repro.machine.faults.FaultPlan` — seeded fault injection
  (drop/duplicate/jitter/crash) recovered by the
  :class:`repro.machine.model.RetryPolicy` timeout-and-backoff protocol
  (see ``docs/robustness.md``).
"""

from repro.machine.model import MachineModel, RetryPolicy
from repro.machine.executor import Simulator, ConditionPolicy, simulate
from repro.machine.faults import FaultDecision, FaultPlan, FaultState
from repro.machine.metrics import ExecutionMetrics

__all__ = [
    "MachineModel",
    "RetryPolicy",
    "Simulator",
    "ConditionPolicy",
    "simulate",
    "FaultDecision",
    "FaultPlan",
    "FaultState",
    "ExecutionMetrics",
]
