"""Distributed-memory machine simulator.

The paper's evaluation reasons about message counts, volume, and latency
hiding (Figure 2: N element messages vs. one vectorized message whose
latency hides behind the ``i`` loop).  The authors ran on a real
distributed-memory machine; we substitute a symbolic executor that runs
annotated programs under a simple cost model and reports exactly those
quantities (see DESIGN.md, substitutions).

* :class:`repro.machine.model.MachineModel` — latency / per-element
  cost / per-message overhead;
* :class:`repro.machine.executor.Simulator` — executes an annotated
  program under concrete bindings, pairing sends with receives;
* :class:`repro.machine.metrics.ExecutionMetrics` — messages, volume,
  work, exposed vs. hidden latency, total time.
"""

from repro.machine.model import MachineModel
from repro.machine.executor import Simulator, ConditionPolicy, simulate
from repro.machine.metrics import ExecutionMetrics

__all__ = [
    "MachineModel",
    "Simulator",
    "ConditionPolicy",
    "simulate",
    "ExecutionMetrics",
]
