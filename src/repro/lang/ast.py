"""Abstract syntax tree for the mini-Fortran language.

Expressions are immutable (frozen dataclasses); statements are mutable so
the communication annotator can splice :class:`Comm` statements into bodies.
Every statement carries an optional numeric ``label`` (the target of
``goto``) and the 1-based source ``line`` it came from (0 for synthesized
statements).
"""

from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Num(Expr):
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class Var(Expr):
    """Scalar variable reference (or parameter), e.g. ``n`` or ``test``."""

    name: str


@dataclass(frozen=True)
class ArrayRef(Expr):
    """Array element reference ``name(subscripts...)``.

    Syntactically this also covers function calls like ``test(i)``; the
    reference analysis consults the symbol table to tell them apart.
    """

    name: str
    subscripts: tuple

    def __str__(self):
        inner = ", ".join(str(s) for s in self.subscripts)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation; ``op`` is one of ``+ - * / < > <= >= == !=``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Opaque(Expr):
    """The ``...`` placeholder used throughout the paper's figures.

    It stands for an arbitrary computation with no array accesses that the
    analysis cares about.
    """


@dataclass(frozen=True)
class RangeExpr(Expr):
    """A section range ``lo:hi``, used in communication argument lists."""

    lo: Expr
    hi: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statements."""

    label: int = field(default=None, kw_only=True)
    line: int = field(default=0, kw_only=True)


@dataclass
class Assign(Stmt):
    """``target = value`` where target is a :class:`Var` or :class:`ArrayRef`."""

    target: Expr
    value: Expr


@dataclass
class Do(Stmt):
    """``do var = lo, hi [, step] ... enddo``.

    Fortran DO loops may execute zero times (``lo > hi``), which is exactly
    the zero-trip construct GIVE-N-TAKE hoists out of.
    """

    var: str
    lo: Expr
    hi: Expr
    step: Expr
    body: list


@dataclass
class If(Stmt):
    """Block ``if cond then ... [else ...] endif``."""

    cond: Expr
    then_body: list
    else_body: list


@dataclass
class IfGoto(Stmt):
    """Logical ``if (cond) goto target`` — the paper's jump out of a loop."""

    cond: Expr
    target: int


@dataclass
class Goto(Stmt):
    """Unconditional ``goto target``."""

    target: int


@dataclass
class Continue(Stmt):
    """``continue`` — a no-op, usually a label carrier."""


@dataclass
class Declaration(Stmt):
    """``real name(size)`` or ``integer name(size)`` (size may be None
    for scalars)."""

    type_name: str
    name: str
    size: Expr


@dataclass
class ParameterDef(Stmt):
    """``parameter name = value``."""

    name: str
    value: Expr


@dataclass
class Distribute(Stmt):
    """``distribute name(scheme)`` with scheme in block/cyclic/replicated."""

    name: str
    scheme: str


@dataclass
class Comm(Stmt):
    """A communication statement inserted by the annotator.

    ``kind`` is ``"read"`` or ``"write"``; ``phase`` is ``"send"``,
    ``"recv"`` or ``None`` for an atomic operation; ``args`` is a list of
    printable section descriptors (see :mod:`repro.analysis.sections`);
    ``reduce`` optionally names a reduction operation combined with a
    WRITE (e.g. ``"sum"`` — the owner accumulates rather than overwrites);
    ``timing`` records which of the paper's two solutions placed this
    statement (``"EAGER"`` or ``"LAZY"``), so downstream consumers like
    the overlap scheduler know each statement's legal-window endpoint.
    """

    kind: str
    phase: str
    args: list
    reduce: str = None
    timing: str = None


@dataclass
class Program:
    """A whole program: declarations followed by executable statements."""

    body: list

    def declarations(self):
        """Return the leading declaration-like statements."""
        return [s for s in self.body if isinstance(s, (Declaration, ParameterDef, Distribute))]

    def executables(self):
        """Return the non-declaration statements."""
        return [
            s
            for s in self.body
            if not isinstance(s, (Declaration, ParameterDef, Distribute))
        ]


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk_statements(body):
    """Yield every statement in ``body`` recursively, in source order."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, Do):
            yield from walk_statements(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)


def walk_expressions(expr):
    """Yield ``expr`` and every sub-expression, outside in."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expressions(expr.left)
        yield from walk_expressions(expr.right)
    elif isinstance(expr, ArrayRef):
        for subscript in expr.subscripts:
            yield from walk_expressions(subscript)
    elif isinstance(expr, RangeExpr):
        yield from walk_expressions(expr.lo)
        yield from walk_expressions(expr.hi)


def statement_expressions(stmt):
    """Yield the top-level expressions appearing in ``stmt``."""
    if isinstance(stmt, Assign):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, Do):
        yield stmt.lo
        yield stmt.hi
        yield stmt.step
    elif isinstance(stmt, (If, IfGoto)):
        yield stmt.cond
    elif isinstance(stmt, ParameterDef):
        yield stmt.value
