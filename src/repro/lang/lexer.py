"""Hand-written lexer for the mini-Fortran language.

The lexer is line oriented, as Fortran is: each physical line is a
statement (there is no continuation syntax in this subset).  Comments start
with ``!`` or a leading ``c``/``*`` column-1 marker and run to end of line.
Identifiers and keywords are case-insensitive and normalized to lower case.
"""

from repro.lang.tokens import KEYWORDS, Token, TokenKind
from repro.util.errors import ParseError

_SINGLE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    ":": TokenKind.COLON,
}


def tokenize(source):
    """Tokenize ``source`` into a list of :class:`Token`, ending with EOF.

    Raises :class:`ParseError` on unrecognized characters.
    """
    tokens = []
    for line_number, raw_line in enumerate(source.split("\n"), start=1):
        line = _strip_comment(raw_line)
        _tokenize_line(line, line_number, tokens)
        if tokens and tokens[-1].kind != TokenKind.NEWLINE:
            tokens.append(Token(TokenKind.NEWLINE, "\n", line_number, len(raw_line) + 1))
    tokens.append(Token(TokenKind.EOF, "", source.count("\n") + 1, 1))
    return tokens


def _strip_comment(line):
    """Remove a ``!`` comment and classic column-1 ``c``/``*`` comments.

    A ``!`` immediately followed by ``=`` is the not-equal operator, not
    a comment start.
    """
    if line[:1] in ("*",) or (line[:1] in ("c", "C") and line[1:2] in ("", " ")):
        return ""
    cut = 0
    while True:
        cut = line.find("!", cut)
        if cut < 0:
            return line
        if line[cut:cut + 2] == "!=":
            cut += 2
            continue
        return line[:cut]


def _tokenize_line(line, line_number, tokens):
    position = 0
    length = len(line)
    while position < length:
        char = line[position]
        column = position + 1
        if char in " \t\r":
            position += 1
        elif line.startswith("...", position):
            tokens.append(Token(TokenKind.DOTS, "...", line_number, column))
            position += 3
        elif char.isdigit():
            position = _lex_number(line, position, line_number, tokens)
        elif char.isalpha() or char == "_":
            position = _lex_name(line, position, line_number, tokens)
        elif line.startswith("==", position):
            tokens.append(Token(TokenKind.EQ, "==", line_number, column))
            position += 2
        elif line.startswith("/=", position) or line.startswith("!=", position):
            tokens.append(Token(TokenKind.NE, line[position : position + 2], line_number, column))
            position += 2
        elif line.startswith("<=", position):
            tokens.append(Token(TokenKind.LE, "<=", line_number, column))
            position += 2
        elif line.startswith(">=", position):
            tokens.append(Token(TokenKind.GE, ">=", line_number, column))
            position += 2
        elif char == "<":
            tokens.append(Token(TokenKind.LT, "<", line_number, column))
            position += 1
        elif char == ">":
            tokens.append(Token(TokenKind.GT, ">", line_number, column))
            position += 1
        elif char == "=":
            tokens.append(Token(TokenKind.ASSIGN, "=", line_number, column))
            position += 1
        elif char in _SINGLE_CHAR:
            tokens.append(Token(_SINGLE_CHAR[char], char, line_number, column))
            position += 1
        else:
            raise ParseError(f"unexpected character {char!r}", line_number, column)


def _lex_number(line, position, line_number, tokens):
    start = position
    while position < len(line) and line[position].isdigit():
        position += 1
    text = line[start:position]
    tokens.append(Token(TokenKind.INT, text, line_number, start + 1))
    return position


def _lex_name(line, position, line_number, tokens):
    start = position
    while position < len(line) and (line[position].isalnum() or line[position] == "_"):
        position += 1
    text = line[start:position].lower()
    kind = KEYWORDS.get(text, TokenKind.NAME)
    tokens.append(Token(kind, text, line_number, start + 1))
    return position
