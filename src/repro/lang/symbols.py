"""Symbol table for mini-Fortran programs.

Collects array declarations, ``parameter`` constants and ``distribute``
directives, and classifies ``name(args)`` expressions as array references
versus opaque function calls (``test(i)`` in the paper's figures is a call,
``y(a(i))`` a reference into a declared array).
"""

from dataclasses import dataclass
from enum import Enum

from repro.lang import ast
from repro.util.errors import AnalysisError


class Distribution(Enum):
    """How an array is mapped across processors."""

    BLOCK = "block"
    CYCLIC = "cyclic"
    REPLICATED = "replicated"


@dataclass
class ArrayInfo:
    """Declared array: element type, symbolic size, distribution."""

    name: str
    type_name: str
    size: ast.Expr
    distribution: Distribution = Distribution.REPLICATED

    @property
    def is_distributed(self):
        return self.distribution is not Distribution.REPLICATED


class SymbolTable:
    """Symbols of one program.

    ``arrays`` maps names to :class:`ArrayInfo`; ``parameters`` maps names
    to their defining expressions; ``scalars`` is the set of declared
    scalar names.  Undeclared names used with parentheses are treated as
    opaque calls, matching the paper's use of ``test(i)``.
    """

    def __init__(self):
        self.arrays = {}
        self.parameters = {}
        self.scalars = set()

    @classmethod
    def from_program(cls, program):
        """Build a symbol table from a parsed program's declarations."""
        table = cls()
        for stmt in program.body:
            if isinstance(stmt, ast.Declaration):
                table.declare(stmt.type_name, stmt.name, stmt.size)
            elif isinstance(stmt, ast.ParameterDef):
                table.parameters[stmt.name] = stmt.value
            elif isinstance(stmt, ast.Distribute):
                table.distribute(stmt.name, stmt.scheme)
        return table

    def declare(self, type_name, name, size):
        """Register a declaration; arrays have a size, scalars do not."""
        if size is None:
            self.scalars.add(name)
        else:
            if name in self.arrays:
                raise AnalysisError(f"array {name!r} declared twice")
            self.arrays[name] = ArrayInfo(name, type_name, size)

    def distribute(self, name, scheme):
        """Apply a ``distribute`` directive to a declared array."""
        if name not in self.arrays:
            raise AnalysisError(f"distribute of undeclared array {name!r}")
        self.arrays[name].distribution = Distribution(scheme)

    def is_array(self, name):
        return name in self.arrays

    def is_distributed(self, name):
        return name in self.arrays and self.arrays[name].is_distributed

    def distributed_arrays(self):
        """Names of all non-replicated arrays, in declaration order."""
        return [name for name, info in self.arrays.items() if info.is_distributed]

    def classify_ref(self, expr):
        """Classify an :class:`ast.ArrayRef` as ``"array"`` or ``"call"``."""
        if not isinstance(expr, ast.ArrayRef):
            raise TypeError(f"expected ArrayRef, got {expr!r}")
        return "array" if self.is_array(expr.name) else "call"
