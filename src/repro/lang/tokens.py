"""Token kinds and the Token record for the mini-Fortran lexer."""

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Lexical categories."""

    NAME = auto()        # identifiers: i, x, test
    INT = auto()         # integer literals: 77, 100
    DOTS = auto()        # the opaque expression '...'
    NEWLINE = auto()     # statement separator
    LPAREN = auto()
    RPAREN = auto()
    COMMA = auto()
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    ASSIGN = auto()      # =
    COLON = auto()       # : (used in section descriptors when re-parsing)
    LT = auto()
    GT = auto()
    LE = auto()
    GE = auto()
    EQ = auto()          # == (also .eq.)
    NE = auto()
    EOF = auto()

    # Keywords (lowercased in source, Fortran is case-insensitive)
    DO = auto()
    ENDDO = auto()
    IF = auto()
    THEN = auto()
    ELSE = auto()
    ENDIF = auto()
    GOTO = auto()
    CONTINUE = auto()
    REAL = auto()
    INTEGER = auto()
    PARAMETER = auto()
    DISTRIBUTE = auto()
    BLOCK = auto()
    CYCLIC = auto()
    REPLICATED = auto()


KEYWORDS = {
    "do": TokenKind.DO,
    "enddo": TokenKind.ENDDO,
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "endif": TokenKind.ENDIF,
    "goto": TokenKind.GOTO,
    "continue": TokenKind.CONTINUE,
    "real": TokenKind.REAL,
    "integer": TokenKind.INTEGER,
    "parameter": TokenKind.PARAMETER,
    "distribute": TokenKind.DISTRIBUTE,
    "block": TokenKind.BLOCK,
    "cyclic": TokenKind.CYCLIC,
    "replicated": TokenKind.REPLICATED,
}


@dataclass(frozen=True)
class Token:
    """A single token with its source position (1-based)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self):
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
