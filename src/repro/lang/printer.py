"""Pretty printer regenerating mini-Fortran source from the AST.

The output format follows the paper's figures: four-space indentation,
labels in the left margin, and communication statements rendered as e.g.
``READ_Send{x(11:n+10)}``.
"""

from repro.lang import ast
from repro.util.text import format_set

_PRECEDENCE = {
    "<": 1, ">": 1, "<=": 1, ">=": 1, "==": 1, "!=": 1,
    "+": 2, "-": 2,
    "*": 3, "/": 3,
}


def format_expr(expr, parent_precedence=0):
    """Render an expression as source text."""
    if isinstance(expr, ast.Num):
        return str(expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Opaque):
        return "..."
    if isinstance(expr, ast.ArrayRef):
        inner = ", ".join(format_expr(s) for s in expr.subscripts)
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.RangeExpr):
        return f"{format_expr(expr.lo)}:{format_expr(expr.hi)}"
    if isinstance(expr, ast.BinOp):
        precedence = _PRECEDENCE[expr.op]
        left = format_expr(expr.left, precedence)
        right = format_expr(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    raise TypeError(f"cannot format expression {expr!r}")


def format_statement(stmt, indent=0):
    """Render one statement (recursively) as a list of source lines."""
    lines = []
    _emit(stmt, indent, lines)
    return lines


def format_program(program):
    """Render a whole program as source text."""
    lines = []
    for stmt in program.body:
        _emit(stmt, 0, lines)
    return "\n".join(lines) + "\n"


_LABEL_WIDTH = 4


def _prefix(stmt, indent):
    label = str(stmt.label) if stmt.label is not None else ""
    return label.ljust(_LABEL_WIDTH) + "    " * indent


def _emit(stmt, indent, lines):
    prefix = _prefix(stmt, indent)
    if isinstance(stmt, ast.Assign):
        lines.append(f"{prefix}{format_expr(stmt.target)} = {format_expr(stmt.value)}")
    elif isinstance(stmt, ast.Do):
        header = f"{prefix}do {stmt.var} = {format_expr(stmt.lo)}, {format_expr(stmt.hi)}"
        if not (isinstance(stmt.step, ast.Num) and stmt.step.value == 1):
            header += f", {format_expr(stmt.step)}"
        lines.append(header)
        for child in stmt.body:
            _emit(child, indent + 1, lines)
        lines.append(f"{' ' * _LABEL_WIDTH}{'    ' * indent}enddo")
    elif isinstance(stmt, ast.If):
        lines.append(f"{prefix}if {format_expr(stmt.cond)} then")
        for child in stmt.then_body:
            _emit(child, indent + 1, lines)
        if stmt.else_body:
            lines.append(f"{' ' * _LABEL_WIDTH}{'    ' * indent}else")
            for child in stmt.else_body:
                _emit(child, indent + 1, lines)
        lines.append(f"{' ' * _LABEL_WIDTH}{'    ' * indent}endif")
    elif isinstance(stmt, ast.IfGoto):
        lines.append(f"{prefix}if {format_expr(stmt.cond)} goto {stmt.target}")
    elif isinstance(stmt, ast.Goto):
        lines.append(f"{prefix}goto {stmt.target}")
    elif isinstance(stmt, ast.Continue):
        lines.append(f"{prefix}continue")
    elif isinstance(stmt, ast.Declaration):
        size = f"({format_expr(stmt.size)})" if stmt.size is not None else ""
        lines.append(f"{prefix}{stmt.type_name} {stmt.name}{size}")
    elif isinstance(stmt, ast.ParameterDef):
        lines.append(f"{prefix}parameter {stmt.name} = {format_expr(stmt.value)}")
    elif isinstance(stmt, ast.Distribute):
        lines.append(f"{prefix}distribute {stmt.name}({stmt.scheme})")
    elif isinstance(stmt, ast.Comm):
        lines.append(f"{prefix}{format_comm(stmt)}")
    else:
        raise TypeError(f"cannot format statement {stmt!r}")


def format_comm(stmt):
    """Render a communication statement: ``READ_Send{...}``,
    ``WRITE_Sum_Recv{...}``, ``PREFETCH{...}``/``WAIT{...}``, …"""
    if stmt.kind == "prefetch":
        # prefetching renders as issue/wait markers instead of send/recv
        head = "WAIT" if stmt.phase == "recv" else "PREFETCH"
        return f"{head}{format_set(stmt.args)}"
    kind = stmt.kind.upper()
    reduce_tag = f"_{stmt.reduce.capitalize()}" if stmt.reduce else ""
    phase = f"_{stmt.phase.capitalize()}" if stmt.phase else ""
    return f"{kind}{reduce_tag}{phase}{format_set(stmt.args)}"
