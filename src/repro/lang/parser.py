"""Recursive-descent parser for the mini-Fortran language.

The grammar (one statement per line)::

    program    :=  line*
    line       :=  [INT] statement NEWLINE
    statement  :=  assignment | do | if | goto | continue
                 | declaration | parameter | distribute
    do         :=  'do' NAME '=' expr ',' expr [',' expr] NEWLINE
                   line* 'enddo'
    if         :=  'if' expr 'then' NEWLINE line* ['else' NEWLINE line*] 'endif'
                 | 'if' expr 'goto' INT
    assignment :=  lvalue '=' expr
    lvalue     :=  NAME ['(' arguments ')']
    expr       :=  comparison; usual precedence, '...' is a primary

Conditions may be written with or without parentheses (the paper writes
``if test then``).
"""

from repro.lang import ast
from repro.lang.tokens import TokenKind
from repro.lang.lexer import tokenize
from repro.util.errors import ParseError

_COMPARISON_OPS = {
    TokenKind.LT: "<",
    TokenKind.GT: ">",
    TokenKind.LE: "<=",
    TokenKind.GE: ">=",
    TokenKind.EQ: "==",
    TokenKind.NE: "!=",
}

_ADDITIVE_OPS = {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}
_MULTIPLICATIVE_OPS = {TokenKind.STAR: "*", TokenKind.SLASH: "/"}


def parse(source):
    """Parse ``source`` text into an :class:`repro.lang.ast.Program`."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._position = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self):
        return self._tokens[self._position]

    def _at(self, *kinds):
        return self._peek().kind in kinds

    def _advance(self):
        token = self._tokens[self._position]
        if token.kind != TokenKind.EOF:
            self._position += 1
        return token

    def _expect(self, kind, what=None):
        token = self._peek()
        if token.kind != kind:
            expected = what or kind.name.lower()
            raise ParseError(
                f"expected {expected}, found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _skip_newlines(self):
        while self._at(TokenKind.NEWLINE):
            self._advance()

    def _end_of_statement(self):
        token = self._peek()
        if not self._at(TokenKind.NEWLINE, TokenKind.EOF):
            raise ParseError(
                f"unexpected trailing input {token.text!r}", token.line, token.column
            )
        self._skip_newlines()

    # -- statements ---------------------------------------------------------

    def parse_program(self):
        body = self._parse_body(terminators=())
        self._expect(TokenKind.EOF, "end of program")
        return ast.Program(body)

    def _parse_body(self, terminators):
        """Parse statements until one of ``terminators`` (or EOF) is next."""
        statements = []
        self._skip_newlines()
        while not self._at(TokenKind.EOF, *terminators):
            statements.append(self._parse_labeled_statement())
            self._skip_newlines()
        return statements

    def _parse_labeled_statement(self):
        label = None
        if self._at(TokenKind.INT):
            label_token = self._advance()
            label = int(label_token.text)
        statement = self._parse_statement()
        statement.label = label
        return statement

    def _parse_statement(self):
        token = self._peek()
        if token.kind == TokenKind.DO:
            return self._parse_do()
        if token.kind == TokenKind.IF:
            return self._parse_if()
        if token.kind == TokenKind.GOTO:
            return self._parse_goto()
        if token.kind == TokenKind.CONTINUE:
            self._advance()
            statement = ast.Continue(line=token.line)
            self._end_of_statement()
            return statement
        if token.kind in (TokenKind.REAL, TokenKind.INTEGER):
            return self._parse_declaration()
        if token.kind == TokenKind.PARAMETER:
            return self._parse_parameter()
        if token.kind == TokenKind.DISTRIBUTE:
            return self._parse_distribute()
        if token.kind in (TokenKind.NAME, TokenKind.DOTS):
            return self._parse_assignment()
        raise ParseError(f"unexpected token {token.text!r}", token.line, token.column)

    def _parse_do(self):
        do_token = self._expect(TokenKind.DO)
        var = self._expect(TokenKind.NAME, "loop variable").text
        self._expect(TokenKind.ASSIGN, "'='")
        lo = self._parse_expr()
        self._expect(TokenKind.COMMA, "','")
        hi = self._parse_expr()
        step = ast.Num(1)
        if self._at(TokenKind.COMMA):
            self._advance()
            step = self._parse_expr()
        self._end_of_statement()
        body = self._parse_body(terminators=(TokenKind.ENDDO,))
        self._expect(TokenKind.ENDDO, "'enddo'")
        self._end_of_statement()
        return ast.Do(var, lo, hi, step, body, line=do_token.line)

    def _parse_if(self):
        if_token = self._expect(TokenKind.IF)
        cond = self._parse_expr()
        if self._at(TokenKind.GOTO):
            self._advance()
            target = int(self._expect(TokenKind.INT, "label").text)
            self._end_of_statement()
            return ast.IfGoto(cond, target, line=if_token.line)
        self._expect(TokenKind.THEN, "'then' or 'goto'")
        self._end_of_statement()
        then_body = self._parse_body(terminators=(TokenKind.ELSE, TokenKind.ENDIF))
        else_body = []
        if self._at(TokenKind.ELSE):
            self._advance()
            self._end_of_statement()
            else_body = self._parse_body(terminators=(TokenKind.ENDIF,))
        self._expect(TokenKind.ENDIF, "'endif'")
        self._end_of_statement()
        return ast.If(cond, then_body, else_body, line=if_token.line)

    def _parse_goto(self):
        goto_token = self._expect(TokenKind.GOTO)
        target = int(self._expect(TokenKind.INT, "label").text)
        self._end_of_statement()
        return ast.Goto(target, line=goto_token.line)

    def _parse_declaration(self):
        type_token = self._advance()
        name = self._expect(TokenKind.NAME, "variable name").text
        size = None
        if self._at(TokenKind.LPAREN):
            self._advance()
            size = self._parse_expr()
            self._expect(TokenKind.RPAREN, "')'")
        self._end_of_statement()
        return ast.Declaration(type_token.text, name, size, line=type_token.line)

    def _parse_parameter(self):
        parameter_token = self._expect(TokenKind.PARAMETER)
        name = self._expect(TokenKind.NAME, "parameter name").text
        self._expect(TokenKind.ASSIGN, "'='")
        value = self._parse_expr()
        self._end_of_statement()
        return ast.ParameterDef(name, value, line=parameter_token.line)

    def _parse_distribute(self):
        distribute_token = self._expect(TokenKind.DISTRIBUTE)
        name = self._expect(TokenKind.NAME, "array name").text
        self._expect(TokenKind.LPAREN, "'('")
        scheme_token = self._peek()
        if scheme_token.kind not in (
            TokenKind.BLOCK,
            TokenKind.CYCLIC,
            TokenKind.REPLICATED,
        ):
            raise ParseError(
                "expected distribution scheme (block/cyclic/replicated), "
                f"found {scheme_token.text!r}",
                scheme_token.line,
                scheme_token.column,
            )
        self._advance()
        self._expect(TokenKind.RPAREN, "')'")
        self._end_of_statement()
        return ast.Distribute(name, scheme_token.text, line=distribute_token.line)

    def _parse_assignment(self):
        start = self._peek()
        target = self._parse_primary()
        if not isinstance(target, (ast.Var, ast.ArrayRef, ast.Opaque)):
            raise ParseError("invalid assignment target", start.line, start.column)
        self._expect(TokenKind.ASSIGN, "'='")
        value = self._parse_expr()
        self._end_of_statement()
        return ast.Assign(target, value, line=start.line)

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self):
        return self._parse_comparison()

    def _parse_comparison(self):
        left = self._parse_additive()
        while self._peek().kind in _COMPARISON_OPS:
            op = _COMPARISON_OPS[self._advance().kind]
            right = self._parse_additive()
            left = ast.BinOp(op, left, right)
        return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while self._peek().kind in _ADDITIVE_OPS:
            op = _ADDITIVE_OPS[self._advance().kind]
            right = self._parse_multiplicative()
            left = ast.BinOp(op, left, right)
        return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while self._peek().kind in _MULTIPLICATIVE_OPS:
            op = _MULTIPLICATIVE_OPS[self._advance().kind]
            right = self._parse_unary()
            left = ast.BinOp(op, left, right)
        return left

    def _parse_unary(self):
        if self._at(TokenKind.MINUS):
            token = self._advance()
            operand = self._parse_unary()
            return ast.BinOp("-", ast.Num(0), operand)
        return self._parse_primary()

    def _parse_primary(self):
        token = self._peek()
        if token.kind == TokenKind.INT:
            self._advance()
            return ast.Num(int(token.text))
        if token.kind == TokenKind.DOTS:
            self._advance()
            return ast.Opaque()
        if token.kind == TokenKind.LPAREN:
            self._advance()
            inner = self._parse_expr()
            self._expect(TokenKind.RPAREN, "')'")
            return inner
        if token.kind == TokenKind.NAME:
            self._advance()
            if self._at(TokenKind.LPAREN):
                self._advance()
                arguments = self._parse_arguments()
                self._expect(TokenKind.RPAREN, "')'")
                return ast.ArrayRef(token.text, tuple(arguments))
            return ast.Var(token.text)
        raise ParseError(f"expected expression, found {token.text!r}", token.line, token.column)

    def _parse_arguments(self):
        arguments = [self._parse_argument()]
        while self._at(TokenKind.COMMA):
            self._advance()
            arguments.append(self._parse_argument())
        return arguments

    def _parse_argument(self):
        lo = self._parse_expr()
        if self._at(TokenKind.COLON):
            self._advance()
            hi = self._parse_expr()
            return ast.RangeExpr(lo, hi)
        return lo
