"""Mini-Fortran frontend.

This package implements a small Fortran-like language that is just large
enough to express every example program in the GIVE-N-TAKE paper (Figures
1, 3, 11) plus declarations and distribution directives needed by the
communication-generation application:

* ``do`` loops with symbolic bounds (potentially zero-trip),
* block ``if/then/else/endif`` and logical ``if (cond) goto L``,
* numeric statement labels and ``goto`` (jumps out of loops),
* assignments with array references, affine subscripts (``x(k+10)``) and
  indirect subscripts (``y(a(i))``),
* the opaque expression ``...`` used throughout the paper's figures,
* declarations ``real x(100)``, ``integer a(100)``, ``parameter n = 100``
  and the directive ``distribute x(block)``.

Entry points: :func:`parse` for source text and :func:`repro.lang.printer.
format_program` to regenerate it.
"""

from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.printer import format_program, format_statement, format_expr
from repro.lang.symbols import SymbolTable, ArrayInfo, Distribution

__all__ = [
    "ast",
    "tokenize",
    "parse",
    "format_program",
    "format_statement",
    "format_expr",
    "SymbolTable",
    "ArrayInfo",
    "Distribution",
]
