"""Ablations over the design choices DESIGN.md calls out.

* zero-trip hoisting on/off: latency hiding vs strict safety;
* message splitting vs atomic operations: exposed latency;
* the synthetic-node post-pass: productions left on synthetic nodes;
* give-for-free vs owner-computes (also in the Figure 3 bench).
"""

import pytest

from repro import (
    ConditionPolicy,
    MachineModel,
    check_placement,
    generate_communication,
    simulate,
)
from repro.core.placement import Placement
from repro.core.postpass import shift_synthetic_productions
from repro.testing.programs import FIG1_SOURCE, FIG11_SOURCE

MACHINE = MachineModel(latency=100, time_per_element=1, message_overhead=10)


def test_bench_zero_trip_hoisting_ablation(benchmark):
    def run_both():
        hoisted = generate_communication(FIG1_SOURCE, hoist_zero_trip=True)
        blocked = generate_communication(FIG1_SOURCE, hoist_zero_trip=False)
        hot = ConditionPolicy("always")
        return (
            simulate(hoisted.annotated_program, MACHINE, {"n": 32}, hot),
            simulate(blocked.annotated_program, MACHINE, {"n": 32}, hot),
            hoisted, blocked,
        )

    hoisted_metrics, blocked_metrics, hoisted, blocked = benchmark(run_both)
    # hoisting: one vectorized message; blocked: per-iteration messages
    assert hoisted_metrics.messages == 1
    assert blocked_metrics.messages == 32
    assert hoisted_metrics.total_time < blocked_metrics.total_time
    # but the blocked placement is strictly safe on the zero-trip path:
    report = check_placement(hoisted.analyzed.ifg, blocked.read_problem,
                             blocked.read_placement, min_trips=0)
    assert not report.by_kind("safety")
    print(f"\n[ablation] hoist : {hoisted_metrics.summary()}")
    print(f"[ablation] block : {blocked_metrics.summary()}")


def test_bench_zero_trip_overproduction_is_bounded(benchmark):
    """What hoisting costs on the zero-trip path: exactly the hoisted
    message, nothing else."""
    hoisted = generate_communication(FIG1_SOURCE, hoist_zero_trip=True)

    def run():
        return simulate(hoisted.annotated_program, MACHINE, {"n": 0},
                        ConditionPolicy("always"))

    metrics = benchmark(run)
    assert metrics.messages == 1     # the wasted (empty) message
    assert metrics.volume == 0       # ... but x(a(1:0)) is empty (§2)
    print(f"\n[ablation] zero-trip run: {metrics.summary()}")


def test_bench_postpass_ablation(benchmark):
    def run_both():
        with_postpass = generate_communication(FIG11_SOURCE, postpass=True)
        without = generate_communication(FIG11_SOURCE, postpass=False)
        return with_postpass, without

    with_postpass, without = benchmark(run_both)

    def synthetic_sites(result):
        return sum(
            1 for production in result.read_placement.productions()
            if production.node.synthetic
        )

    assert synthetic_sites(with_postpass) < synthetic_sites(without)
    print(f"\n[ablation] synthetic read-production sites: "
          f"postpass={synthetic_sites(with_postpass)}, "
          f"no-postpass={synthetic_sites(without)}")


def test_bench_split_vs_atomic(benchmark):
    def run_both():
        split = generate_communication(FIG1_SOURCE, split_messages=True)
        atomic = generate_communication(FIG1_SOURCE, split_messages=False)
        policy = ConditionPolicy("always")
        return (
            simulate(split.annotated_program, MACHINE, {"n": 32}, policy),
            simulate(atomic.annotated_program, MACHINE, {"n": 32}, policy),
        )

    split_metrics, atomic_metrics = benchmark(run_both)
    assert split_metrics.hidden_latency > 0
    assert atomic_metrics.hidden_latency == 0
    assert split_metrics.total_time <= atomic_metrics.total_time
    print(f"\n[ablation] split : {split_metrics.summary()}")
    print(f"[ablation] atomic: {atomic_metrics.summary()}")
