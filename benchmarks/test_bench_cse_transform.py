"""CSE as a transformation: executed-evaluation counts.

Runs random scalar programs through a counting interpreter in three
versions — original, GIVE-N-TAKE-transformed, LCM-transformed — and
compares how many binary-operation evaluations of the shared expressions
actually execute.  This turns the §1 PRE comparison into end-to-end
executed-code numbers.
"""

import random

import pytest

from repro.lang import ast
from repro.lang.parser import parse
from repro.pre.transform import eliminate_common_subexpressions, eliminate_with_lcm
from repro.testing.programs import AnalyzedProgram


def scalar_program(seed, size=12):
    rng = random.Random(seed)
    pool = ["a + b", "a * b", "b - a"]
    counter = [0]

    def body(depth, budget):
        lines = []
        while budget[0] > 0:
            budget[0] -= 1
            roll = rng.random()
            counter[0] += 1
            if depth < 2 and roll < 0.25:
                lines.append(f"do i{counter[0]} = 1, 3")
                lines.extend("    " + l for l in body(depth + 1, budget))
                lines.append("enddo")
            elif depth < 2 and roll < 0.45:
                lines.append("if a < b then")
                lines.extend("    " + l for l in body(depth + 1, budget))
                if rng.random() < 0.5:
                    lines.append("else")
                    lines.extend("    " + l for l in body(depth + 1, budget))
                lines.append("endif")
            elif roll < 0.6:
                lines.append(f"s = s + {rng.randint(1, 3)}")
            else:
                lines.append(
                    f"v{counter[0]} = {pool[rng.randrange(len(pool))]}")
        return lines

    return "\n".join(body(0, [size])) or "u = a + b"


def count_evaluations(source, env):
    """Execute and count BinOp evaluations whose operator is arithmetic
    (the candidate expressions; comparisons excluded)."""
    program = parse(source)
    env = dict(env)
    counts = [0]

    def value(expr):
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Var):
            return env.get(expr.name, 0)
        left, right = value(expr.left), value(expr.right)
        if expr.op in "+-*/":
            counts[0] += 1
        return {
            "+": left + right, "-": left - right, "*": left * right,
            "/": left // right if right else 0,
            "<": left < right, ">": left > right,
            "<=": left <= right, ">=": left >= right,
            "==": left == right, "!=": left != right,
        }[expr.op]

    def run(body):
        for stmt in body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.Var):
                env[stmt.target.name] = value(stmt.value)
            elif isinstance(stmt, ast.Do):
                i = value(stmt.lo)
                while i <= value(stmt.hi):
                    env[stmt.var] = i
                    run(stmt.body)
                    i += 1
            elif isinstance(stmt, ast.If):
                run(stmt.then_body if value(stmt.cond) else stmt.else_body)

    run(program.executables())
    observable = {k: v for k, v in env.items() if not k.startswith("__")}
    return counts[0], observable


def test_bench_executed_evaluations(benchmark):
    def run():
        totals = {"original": 0, "gnt": 0, "lcm": 0}
        env = {"a": 3, "b": 8, "s": 0}
        for seed in range(12):
            source = scalar_program(seed)
            original_count, original_env = count_evaluations(source, env)
            gnt = eliminate_common_subexpressions(
                AnalyzedProgram(parse(source))).transformed_source()
            gnt_count, gnt_env = count_evaluations(gnt, env)
            lcm = eliminate_with_lcm(
                AnalyzedProgram(parse(source))).transformed_source()
            lcm_count, lcm_env = count_evaluations(lcm, env)
            assert gnt_env == original_env, seed     # semantics preserved
            assert lcm_env == original_env, seed
            totals["original"] += original_count
            totals["gnt"] += gnt_count
            totals["lcm"] += lcm_count
        return totals

    totals = benchmark(run)
    # both eliminate work; GNT at least matches LCM overall thanks to
    # zero-trip hoisting (these runs take every loop, so hoisting's
    # extra risk never costs here)
    assert totals["gnt"] <= totals["original"]
    assert totals["lcm"] <= totals["original"]
    assert totals["gnt"] <= totals["lcm"]
    print(f"\n[cse] executed arithmetic evaluations: {totals}")
