"""§5.2: the solver is O(E) — each equation evaluated once per node.

The paper: "the total complexity of GIVE-N-TAKE is O(E) steps ... under
this assumption [bounded out-degree and nesting], GIVE-N-TAKE as well as
other interval-based elimination methods have linear time complexity."

We time the solve on random structured programs of growing size and
assert that time per node stays bounded (quasi-linear growth), and we
verify the each-equation-once property by counting equation evaluations
two independent ways: monkeypatched equation functions (ground truth)
and the ``repro.obs`` tracer (the instrumentation under test).  The
timing runs execute *untraced* — they exercise, and therefore guard,
the zero-cost disabled-collector path.

``python -m repro.obs.bench`` measures the same ladder into
``BENCH_solver.json`` (uploaded by CI; see docs/observability.md).
"""

import time

import pytest

from repro.core import Problem, solve
from repro.core.solver import GiveNTakeSolver
from repro.graph.views import ForwardView
from repro.obs import tracing
from repro.testing.generator import random_analyzed_program, random_problem

SIZES = [40, 160, 640]


def build_instance(size, seed=11):
    analyzed = random_analyzed_program(seed, size=size, max_depth=3)
    problem = random_problem(analyzed, seed=seed, n_elements=8)
    return analyzed, problem


@pytest.mark.parametrize("size", SIZES)
def test_bench_solve_scaling(benchmark, size):
    analyzed, problem = build_instance(size)
    result = benchmark(solve, analyzed.ifg, problem)
    assert result is not None
    print(f"\n[scaling] size={size}: {len(analyzed.ifg.real_nodes())} nodes")


def test_bench_linearity_assertion(benchmark):
    """Time/node must not blow up with size (allowing noisy small runs a
    generous 4x budget between consecutive 4x size steps)."""

    def measure():
        per_node = []
        for size in SIZES:
            analyzed, problem = build_instance(size)
            nodes = len(analyzed.ifg.real_nodes())
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                solve(analyzed.ifg, problem)
                best = min(best, time.perf_counter() - start)
            per_node.append(best / nodes)
        return per_node

    per_node = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\n[scaling] seconds/node: "
          + ", ".join(f"{t * 1e6:.1f}us" for t in per_node))
    for smaller, larger in zip(per_node, per_node[1:]):
        assert larger < smaller * 4, per_node


def test_bench_each_equation_evaluated_once(benchmark):
    """Count actual equation evaluations: each of the fifteen equations
    runs exactly once per node (per timing for S3/S4) on a jump-free
    forward instance — the elimination property behind O(E)."""
    import repro.core.equations as equations_module

    analyzed = random_analyzed_program(11, size=80, goto_probability=0.0)
    problem = random_problem(analyzed, seed=12, n_elements=8)
    assert not analyzed.ifg.jump_edges()
    view = ForwardView(analyzed.ifg)

    equation_names = [name for name in dir(equations_module)
                      if name.startswith("eq")]

    def counted_solve():
        counters = {}
        originals = {}

        def wrap(name):
            function = getattr(equations_module, name)

            def wrapper(*args, **kwargs):
                counters[name] = counters.get(name, 0) + 1
                return function(*args, **kwargs)

            return function, wrapper

        for name in equation_names:
            originals[name], wrapper = wrap(name)
            setattr(equations_module, name, wrapper)
        try:
            with tracing() as collector:
                GiveNTakeSolver(view, problem).run()
        finally:
            for name, function in originals.items():
                setattr(equations_module, name, function)
        return counters, collector.counters()["equation_evaluations"]

    counters, traced = benchmark(counted_solve)
    node_count = len(analyzed.ifg.nodes())  # ROOT included
    for name, count in counters.items():
        if name in ("eq9_give_loc", "eq10_steal_loc"):
            # S2 runs once per child — every node except ROOT
            assert count == node_count - 1, (name, count)
        elif name in ("eq11_given_in", "eq12_given", "eq13_given_out",
                      "eq14_res_in", "eq15_res_out"):
            assert count == node_count * 2, (name, count)  # per timing
        else:
            assert count == node_count, (name, count)
    # the obs tracer must report the exact same counts, keyed by the
    # paper's equation numbers (cross-check of the instrumentation)
    for name, count in counters.items():
        number = int(name[2:].split("_", 1)[0])
        assert traced[number] == count, (name, number, traced[number], count)
    assert set(traced) == set(range(1, 16))
