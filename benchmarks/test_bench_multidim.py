"""2-D distributed grids: multi-dimensional sections end to end.

The Fortran D setting the paper came from is full of 2-D distributed
arrays; this bench asserts the halo-shaped sections of a Jacobi sweep
and the message-count collapse versus naive placement.
"""

import pytest

from repro import (
    ConditionPolicy,
    MachineModel,
    generate_communication,
    naive_communication,
    simulate,
)

JACOBI = """
real g(10000)
real new(10000)
distribute g(block)
distribute new(block)
    do t = 1, steps
        do i = 1, n
            do j = 1, m
                new(i, j) = g(i - 1, j) + g(i + 1, j) + g(i, j - 1) + g(i, j + 1)
            enddo
        enddo
        do p = 1, n
            do q = 1, m
                g(p, q) = new(p, q)
            enddo
        enddo
    enddo
"""

MACHINE = MachineModel(latency=120, time_per_element=0.2, message_overhead=15)


def test_bench_jacobi_halo_sections(benchmark):
    result = benchmark(generate_communication, JACOBI)
    text = result.annotated_source()
    for section in ("g(0:n - 1, 1:m)", "g(2:n + 1, 1:m)",
                    "g(1:n, 0:m - 1)", "g(1:n, 2:m + 1)"):
        assert f"READ_Send{{{section}" in text or section in text
    # one vectorized gather per step, inside the t loop
    lines = [line.strip() for line in text.splitlines()]
    t_loop = lines.index("do t = 1, steps")
    send_lines = [i for i, l in enumerate(lines) if l.startswith("READ_Send")]
    assert all(i > t_loop for i in send_lines)


def test_bench_jacobi_vs_naive(benchmark):
    bindings = {"n": 16, "m": 16, "steps": 5}

    def run_both():
        gnt = generate_communication(JACOBI)
        naive = naive_communication(JACOBI)
        return (
            simulate(gnt.annotated_program, MACHINE, bindings),
            simulate(naive.annotated_program, MACHINE, bindings),
        )

    gnt_metrics, naive_metrics = benchmark(run_both)
    # per step: 1 gather message + 1 write-back, plus the final writes
    assert gnt_metrics.messages <= 2 * bindings["steps"] + 2
    # naive: one message per element reference per iteration
    assert naive_metrics.messages > 1000 * gnt_metrics.messages / 2
    speedup = gnt_metrics.speedup_over(naive_metrics)
    assert speedup > 50
    print(f"\n[2d] jacobi 16x16x5: {naive_metrics.messages} -> "
          f"{gnt_metrics.messages} messages, {speedup:.0f}x; "
          f"by kind {gnt_metrics.messages_by_kind}")


def test_bench_dimension_refinement(benchmark):
    """Disjoint rows do not invalidate each other (per-dimension §6
    refinement)."""
    source = """
real g(10000)
distribute g(block)
    do j = 1, m
        u = g(1, j)
    enddo
    do k = 1, m
        g(2, k) = 1
    enddo
    do l = 1, m
        w = g(1, l)
    enddo
"""
    result = benchmark(generate_communication, source)
    text = result.annotated_source()
    # row 1 is read once; the write to row 2 does not force a re-read
    assert text.count("READ_Send{g(1, 1:m)}") == 1
