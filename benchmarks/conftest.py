"""Benchmark harness configuration.

Every benchmark module regenerates one of the paper's figures or claims
(see DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-
measured).  Each test both *times* the relevant pipeline stage with
pytest-benchmark and *asserts the shape* of the result the paper reports
(who wins, by what factor, where the behavior changes).
"""

import pytest
