"""Figure 3: WRITE placement with give-for-free.

Paper's claims: (a) local definitions of non-owned data are written
back by one vectorized WRITE after the defining loop; (b) the defined
portion is never READ (it "comes for free"); (c) the synthesized else
branch receives the READ for the other path.
"""

import pytest

from repro import ConditionPolicy, MachineModel, generate_communication, simulate
from repro.testing.programs import FIG3_SOURCE


def test_bench_fig3_pipeline(benchmark):
    result = benchmark(generate_communication, FIG3_SOURCE)
    text = result.annotated_source()
    lines = [line.strip() for line in text.splitlines()]

    # one vectorized write, right after the defining loop
    assert lines.count("WRITE_Send{x(a(1:n))}") == 1
    # give-for-free: the defined portion is never fetched
    assert not any("READ" in line and "x(a(" in line for line in lines)
    # the else branch was materialized for the other path's READ
    else_index = lines.index("else")
    assert lines[else_index + 1] == "READ_Send{x(6:n + 5)}"
    print("\n[fig3] annotated output:\n" + text)


def test_bench_give_for_free_saves_messages(benchmark):
    """Ablation: with owner-computes (no give-for-free, no writes) the
    READ side must fetch what the definition could have provided."""
    machine = MachineModel(latency=50, time_per_element=1, message_overhead=5)

    def run_both():
        give = generate_communication(FIG3_SOURCE, owner_computes=False)
        no_give = generate_communication(FIG3_SOURCE, owner_computes=True)
        give_metrics = simulate(give.annotated_program, machine, {"n": 32},
                                ConditionPolicy("always"))
        no_give_metrics = simulate(no_give.annotated_program, machine,
                                   {"n": 32}, ConditionPolicy("always"))
        return give, no_give, give_metrics, no_give_metrics

    give, no_give, give_metrics, no_give_metrics = benchmark(run_both)
    # without the coupling there are no WRITEs at all ...
    assert "WRITE" not in no_give.annotated_source()
    # ... but the READ side must still communicate; with give-for-free
    # the local definition feeds later reads without a fetch.
    assert "WRITE" in give.annotated_source()
    print(f"\n[fig3] give-for-free : {give_metrics.summary()}")
    print(f"[fig3] owner-computes: {no_give_metrics.summary()}")


def test_bench_write_vectorization_vs_naive(benchmark):
    """GNT writes back once per defining loop; the naive baseline writes
    every element individually (n messages)."""
    from repro import naive_communication

    machine = MachineModel(latency=60, time_per_element=1, message_overhead=5)

    def run_both():
        gnt = generate_communication(FIG3_SOURCE)
        naive = naive_communication(FIG3_SOURCE)
        policy = ConditionPolicy("always")
        return (
            simulate(gnt.annotated_program, machine, {"n": 32}, policy),
            simulate(naive.annotated_program, machine, {"n": 32}, policy),
        )

    gnt_metrics, naive_metrics = benchmark(run_both)
    # GNT on the then path: 1 vectorized write + 1 read, *reused* for
    # both the j and k loops; naive: 32 writes + 2x32 element reads.
    assert gnt_metrics.messages == 2
    assert naive_metrics.messages == 32 + 32 + 32
    assert gnt_metrics.total_time < naive_metrics.total_time
    print(f"\n[fig3] gnt  : {gnt_metrics.summary()}")
    print(f"[fig3] naive: {naive_metrics.summary()}")
