"""§5: why an elimination method — one-pass vs chaotic iteration.

The paper's solver evaluates each equation once per node by respecting
the evaluation-order constraints (§5.1).  We compare it against the
naive fixpoint iteration (same equations, no ordering insight) — both
must produce *identical* variables, and the elimination order must win
by a growing factor as programs get larger.
"""

import time

import pytest

from repro.core.reference import solve_iterative, solutions_equal
from repro.core.solver import make_view, solve
from repro.testing.generator import random_analyzed_program, random_problem


def instance(size, seed=23):
    analyzed = random_analyzed_program(seed, size=size)
    problem = random_problem(analyzed, seed=seed + 1, n_elements=6)
    return analyzed, problem


def test_bench_one_pass_solver(benchmark):
    analyzed, problem = instance(200)
    benchmark(solve, analyzed.ifg, problem)


def test_bench_fixpoint_solver(benchmark):
    analyzed, problem = instance(200)
    benchmark(solve_iterative, analyzed.ifg, problem)


def test_bench_equivalence_and_speed_ratio(benchmark):
    def run():
        rows = []
        for size in (50, 200):
            analyzed, problem = instance(size)
            view = make_view(analyzed.ifg, problem.direction)

            start = time.perf_counter()
            one_pass = solve(analyzed.ifg, problem, view=view)
            one_pass_time = time.perf_counter() - start

            start = time.perf_counter()
            fixpoint = solve_iterative(analyzed.ifg, problem, view=view)
            fixpoint_time = time.perf_counter() - start

            nodes = view.nodes_preorder()
            assert solutions_equal(one_pass, fixpoint, nodes)
            rows.append((size, one_pass_time, fixpoint_time))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[solver] size: one-pass vs fixpoint")
    for size, one_pass_time, fixpoint_time in rows:
        ratio = fixpoint_time / one_pass_time
        print(f"[solver]   {size:4}: {one_pass_time * 1e3:7.2f}ms vs "
              f"{fixpoint_time * 1e3:8.2f}ms  ({ratio:.1f}x)")
    # the elimination order must win clearly on the larger instance
    size, one_pass_time, fixpoint_time = rows[-1]
    assert fixpoint_time > one_pass_time
