"""Figure 16 / §5.3: AFTER problems with jumps out of loops.

Under reversal a jump out of a loop becomes a jump *into* it; hoisting
production out of such loops can be unsafe.  The paper's implementation
blocks those loops (conservative); we additionally provide the
optimistic-verify extension the paper suggests in §6.  Both must stay
balanced and sufficient; the optimistic mode recovers Figure 14's
vectorized write.
"""

import pytest

from repro.core import Problem, check_placement, solve
from repro.core.placement import Placement
from repro.core.problem import Direction
from repro.commgen import generate_communication
from repro.graph.views import BackwardView
from repro.testing.programs import FIG11_SOURCE, analyze_source

FIG16_SHAPE = (
    "do i = 1, n\n"
    "u = x(i)\n"
    "if t goto 9\n"
    "enddo\n"
    "a = 1\n"
    "9 b = 2\n"
)


def solve_after(analyzed, blocked):
    problem = Problem(direction=Direction.AFTER)
    problem.add_take(analyzed.node_named("u ="), "xi")
    view = BackwardView(analyzed.ifg, blocked=blocked)
    solution = solve(analyzed.ifg, problem, view=view)
    return problem, Placement(analyzed.ifg, problem, solution)


def test_bench_conservative_blocking_is_safe(benchmark):
    analyzed = analyze_source(FIG16_SHAPE)
    problem, placement = benchmark(solve_after, analyzed, True)
    report = check_placement(analyzed.ifg, problem, placement, max_paths=200)
    assert not report.by_kind("balance"), str(report)
    assert not report.by_kind("sufficiency"), str(report)


def test_bench_optimistic_verified_on_fig11_writes(benchmark):
    """The optimistic mode hoists the write out of the jumped-out-of
    loop (one vectorized write per exit instead of one per iteration)
    and the checker certifies it."""
    result = benchmark(generate_communication, FIG11_SOURCE,
                       after_jumps="optimistic")
    conservative = generate_communication(FIG11_SOURCE,
                                          after_jumps="conservative")
    optimistic_writes = result.write_placement.production_count()
    conservative_writes = conservative.write_placement.production_count()

    # Optimistic: write regions at the two loop exits; conservative:
    # per-iteration regions inside the loop.  Count placements executed
    # on an n-trip run to see the dynamic difference.
    from repro import ConditionPolicy, MachineModel, simulate
    machine = MachineModel(latency=50, time_per_element=1, message_overhead=5)
    optimistic_metrics = simulate(result.annotated_program, machine,
                                  {"n": 24}, ConditionPolicy("never"))
    conservative_metrics = simulate(conservative.annotated_program, machine,
                                    {"n": 24}, ConditionPolicy("never"))
    assert optimistic_metrics.messages < conservative_metrics.messages
    print(f"\n[fig16] optimistic  : sites={optimistic_writes} "
          f"{optimistic_metrics.summary()}")
    print(f"[fig16] conservative: sites={conservative_writes} "
          f"{conservative_metrics.summary()}")


def test_bench_optimistic_falls_back_when_unsafe(benchmark):
    """On shapes where the pure equations break balance (nested loops
    skipped by the jump), the pipeline's verification falls back to the
    conservative solution — the result must always check out."""
    source = (
        "real x(100)\ndistribute x(block)\n"
        "do i = 1, n\n"
        "x(i) = 1\n"
        "do j = 1, n\n"
        "if t goto 9\n"
        "u = 1\n"
        "enddo\n"
        "do k = 1, n\n"
        "x(k) = 2\n"
        "enddo\n"
        "enddo\n"
        "9 w = 2\n"
    )
    result = benchmark(generate_communication, source)
    report = check_placement(result.analyzed.ifg, result.write_problem,
                             result.write_placement, max_paths=200)
    assert not report.by_kind("balance"), str(report)
