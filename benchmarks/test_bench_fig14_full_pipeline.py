"""Figure 14 (and the §4 golden values): the full pipeline on Figure 11.

Benchmarks the complete communication-generation pipeline and asserts
the annotated output the paper prints, plus the result-variable values
of §4.5 (READ_Send at nodes 1/6/10, READ_Recv at node 12).
"""

import pytest

from repro.core import Problem, solve
from repro.core.problem import Timing
from repro.commgen import generate_communication
from repro.testing.programs import FIG11_SOURCE, analyze_source


def test_bench_full_pipeline(benchmark):
    result = benchmark(generate_communication, FIG11_SOURCE)
    lines = [line.strip() for line in result.annotated_source().splitlines()]
    assert lines[6] == "READ_Send{x(11:n + 10)}"          # top of program
    assert "WRITE_Send{y(a(1:i))}" in lines               # partial section
    assert "77  READ_Recv{x(11:n + 10), y(b(1:n))}" in [
        line.strip() for line in result.annotated_source().splitlines()
    ]
    print("\n[fig14]\n" + result.annotated_source())


def test_bench_read_instance_solve(benchmark):
    """Time just the GiveNTake solve of the §4 READ instance, and check
    its result variables against the paper's §4.5 listings."""
    analyzed = analyze_source(FIG11_SOURCE)
    problem = Problem()
    problem.add_take(analyzed.node(13), "x_k", "y_b")
    problem.add_give(analyzed.node(3), "y_a")
    problem.add_steal(analyzed.node(3), "y_b")

    solution = benchmark(solve, analyzed.ifg, problem)
    assert analyzed.numbers(solution.nodes_with("RES_in", "x_k", Timing.EAGER)) == [1]
    assert analyzed.numbers(solution.nodes_with("RES_in", "y_b", Timing.EAGER)) == [6, 10]
    assert analyzed.numbers(solution.nodes_with("RES_in", "x_k", Timing.LAZY)) == [12]
    assert analyzed.numbers(solution.nodes_with("RES_in", "y_b", Timing.LAZY)) == [12]


def test_bench_atomic_vs_split_exposure(benchmark):
    """The split (send/recv) placement hides latency that the atomic
    placement must expose — the point of non-atomicity (§1, §6)."""
    from repro import ConditionPolicy, MachineModel, simulate

    machine = MachineModel(latency=200, time_per_element=1, message_overhead=5)

    def run_both():
        split = generate_communication(FIG11_SOURCE, split_messages=True)
        atomic = generate_communication(FIG11_SOURCE, split_messages=False)
        split_metrics = simulate(split.annotated_program, machine, {"n": 32},
                                 ConditionPolicy("never"))
        atomic_metrics = simulate(atomic.annotated_program, machine, {"n": 32},
                                  ConditionPolicy("never"))
        return split_metrics, atomic_metrics

    split_metrics, atomic_metrics = benchmark(run_both)
    assert split_metrics.hidden_latency > atomic_metrics.hidden_latency
    assert split_metrics.total_time < atomic_metrics.total_time
    print(f"\n[fig14] split : {split_metrics.summary()}")
    print(f"[fig14] atomic: {atomic_metrics.summary()}")
