"""§6 extensions: reductions, dependence refinement, resource pressure.

These are the paper's listed extensions ("WRITEs combined with different
reduction operations", "combination with dependence analysis ... refining
the initial assignments", "a heuristic for inserting additional
STEAL_init's" against resource pressure), implemented and measured.
"""

import pytest

from repro import (
    ConditionPolicy,
    MachineModel,
    Problem,
    check_placement,
    generate_communication,
    naive_communication,
    simulate,
)
from repro.core.placement import Placement
from repro.core.pressure import limit_production_span, measure_spans
from repro.core.solver import solve
from repro.testing.programs import analyze_source

MESH_SWEEP = """
real x(1000)
real flux(1000)
integer edge1(1000)
integer edge2(1000)
distribute x(block)
distribute flux(block)
    do t = 1, steps
        do k = 1, n
            flux(edge1(k)) = flux(edge1(k)) + x(edge2(k))
        enddo
        do m = 1, n
            x(m) = ...
        enddo
    enddo
"""

MACHINE = MachineModel(latency=150, time_per_element=1, message_overhead=20)


def test_bench_reduction_scatter(benchmark):
    result = benchmark(generate_communication, MESH_SWEEP)
    text = result.annotated_source()
    assert "WRITE_Sum_Send{flux(edge1(1:n))}" in text
    # the reduction never fetches old flux values
    assert "READ_Send{flux" not in text
    bindings = {"n": 256, "steps": 10}
    gnt = simulate(result.annotated_program, MACHINE, bindings,
                   ConditionPolicy("always"))
    naive = simulate(naive_communication(MESH_SWEEP).annotated_program,
                     MACHINE, bindings, ConditionPolicy("always"))
    assert gnt.messages < naive.messages / 100
    print(f"\n[ext] mesh sweep: {naive.messages} naive messages -> "
          f"{gnt.messages} ({gnt.speedup_over(naive):.0f}x faster)")


def test_bench_dependence_refinement(benchmark):
    """Symbolic disjointness avoids a false steal and its re-read."""
    source = """
real x(200)
distribute x(block)
    do k = 1, n
        u = x(k + n)
    enddo
    do i = 1, n
        x(i) = 1
    enddo
    do l = 1, n
        w = x(l + n)
    enddo
"""

    def run_both():
        refined = generate_communication(source)
        conservative = generate_communication(source, refine_sections=False)
        bindings = {"n": 64}
        return (
            simulate(refined.annotated_program, MACHINE, bindings),
            simulate(conservative.annotated_program, MACHINE, bindings),
        )

    refined_metrics, conservative_metrics = benchmark(run_both)
    # one read message saved (and one write coupling relaxed)
    assert refined_metrics.messages < conservative_metrics.messages
    print(f"\n[ext] refined     : {refined_metrics.summary()}")
    print(f"[ext] conservative: {conservative_metrics.summary()}")


def test_bench_register_promotion(benchmark):
    """§1's unified load/store placement: in-loop memory traffic
    collapses to one LOAD before and one STORE after."""
    from repro.regpromo import promote_registers

    source = (
        "real s(100)\n"
        "do i = 1, n\n"
        "s(1) = s(1) + w(i)\n"
        "s(2) = s(2) + s(1)\n"
        "enddo\n"
    )
    result = benchmark(promote_registers, source)
    machine = MachineModel(latency=20, time_per_element=0, message_overhead=1)
    metrics = simulate(result.annotated_program, machine, {"n": 200})
    # one grouped LOAD + one grouped STORE moving 4 values, instead of
    # ~1000 in-loop accesses (s(1)'s reuse inside s(2)'s update is
    # register-forwarded by the give coupling)
    assert metrics.messages == 2
    assert metrics.volume == 4
    print(f"\n[ext] regpromo: {metrics.messages} memory ops "
          f"({metrics.volume:.0f} values) for a 200-trip double accumulator")


def test_bench_prefetch_stalls(benchmark):
    """§6 prefetching: demand-miss stalls vs prefetched execution."""
    from repro.prefetch import generate_prefetches

    source = (
        "real a(10000)\nreal b(10000)\n"
        "do i = 1, n\nv = a(i)\nenddo\n"
        "do j = 1, n\nw = b(j)\nenddo\n"
    )
    machine = MachineModel(latency=80, time_per_element=0.05,
                           message_overhead=1)

    def run():
        result = generate_prefetches(source)
        return simulate(result.annotated_program, machine, {"n": 128})

    metrics = benchmark(run)
    transferred = metrics.exposed_latency + metrics.hidden_latency
    assert metrics.hidden_latency >= machine.latency  # b hides behind a's loop
    print(f"\n[ext] prefetch: {100 * metrics.hidden_latency / transferred:.0f}% "
          f"of transfer latency hidden")


def test_bench_pressure_span_cap(benchmark):
    """Capping region spans trades hidden latency for buffer lifetime."""
    source = "\n".join(f"v{i} = {i}" for i in range(16)) + "\nu = x(1)"
    analyzed = analyze_source(source)

    def run():
        rows = []
        for max_span in (None, 8, 4, 2):
            problem = Problem()
            problem.add_take(analyzed.node_named("u ="), "e")
            if max_span is None:
                solution = solve(analyzed.ifg, problem)
                placement = Placement(analyzed.ifg, problem, solution)
            else:
                _, placement, _ = limit_production_span(
                    analyzed.ifg, problem, max_span)
            span = measure_spans(analyzed.ifg, placement)["e"][0]
            report = check_placement(analyzed.ifg, problem, placement)
            rows.append((max_span, span, report.ok(ignore=("redundant",))))
        return rows

    rows = benchmark(run)
    print("\n[ext] span cap -> achieved span (correct?)")
    for cap, span, ok in rows:
        print(f"[ext]   cap={cap}: span={span} ok={ok}")
        assert ok
    spans = [span for _, span, _ in rows]
    assert spans == sorted(spans, reverse=True)  # tighter caps, shorter spans
