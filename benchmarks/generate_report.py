#!/usr/bin/env python3
"""Regenerate the quantitative rows of EXPERIMENTS.md in one run.

Usage:  python benchmarks/generate_report.py

Prints a markdown summary of every headline number: Figure 2's message
counts and speedups, Figure 3's traffic, the solver scaling and
one-pass-vs-fixpoint ratios, the PRE comparison, and the extension
results.  (The pytest benchmarks assert the same shapes; this script is
the human-readable view.)

It also measures the solver-observability ladder into the
machine-readable ``BENCH_solver.json`` (``--bench-json PATH`` to move
it, ``--no-bench-json`` to skip); CI runs ``python -m repro.obs.bench``
directly and uploads the same artifact.
"""

import argparse
import time

from repro import (
    ConditionPolicy,
    MachineModel,
    generate_communication,
    naive_communication,
    simulate,
)
from repro.core.reference import solve_iterative
from repro.core.solver import make_view, solve
from repro.testing.generator import random_analyzed_program, random_problem
from repro.testing.programs import FIG1_SOURCE, FIG3_SOURCE, FIG11_SOURCE

MACHINE = MachineModel(latency=100, time_per_element=1, message_overhead=10)


def fig2_table():
    print("## Figure 2 — naive vs GIVE-N-TAKE (READ placement)\n")
    print("| n | naive msgs | GNT msgs | naive exposed | GNT hidden | speedup |")
    print("|---|-----------|----------|---------------|------------|---------|")
    gnt = generate_communication(FIG1_SOURCE)
    naive = naive_communication(FIG1_SOURCE)
    for n in (8, 32, 128):
        policy = ConditionPolicy("always")
        g = simulate(gnt.annotated_program, MACHINE, {"n": n}, policy)
        m = simulate(naive.annotated_program, MACHINE, {"n": n}, policy)
        print(f"| {n} | {m.messages} | {g.messages} | "
              f"{m.exposed_latency:.0f} | {g.hidden_latency:.0f} | "
              f"{g.speedup_over(m):.1f}x |")
    print()


def fig3_row():
    print("## Figure 3 — write-back + give-for-free\n")
    gnt = generate_communication(FIG3_SOURCE)
    naive = naive_communication(FIG3_SOURCE)
    policy = ConditionPolicy("always")
    g = simulate(gnt.annotated_program, MACHINE, {"n": 32}, policy)
    m = simulate(naive.annotated_program, MACHINE, {"n": 32}, policy)
    print(f"GNT: {g.summary()}")
    print(f"naive: {m.summary()}")
    print()


def fig14_row():
    print("## Figure 14 — full pipeline on the running example\n")
    result = generate_communication(FIG11_SOURCE)
    reads, writes = result.communication_count()
    print(f"read placements: {reads}, write placements: {writes}")
    policy = ConditionPolicy("never")
    metrics = simulate(result.annotated_program, MACHINE, {"n": 48}, policy)
    print(f"simulated (n=48, no early exit): {metrics.summary()}")
    print()


def scaling_table():
    print("## Solver scaling (one pass vs fixpoint iteration)\n")
    print("| nodes | one-pass | fixpoint | ratio |")
    print("|-------|----------|----------|-------|")
    for size in (50, 200, 640):
        analyzed = random_analyzed_program(23, size=size)
        problem = random_problem(analyzed, seed=24, n_elements=6)
        view = make_view(analyzed.ifg, problem.direction)
        start = time.perf_counter()
        solve(analyzed.ifg, problem, view=view)
        one_pass = time.perf_counter() - start
        start = time.perf_counter()
        solve_iterative(analyzed.ifg, problem, view=view)
        fixpoint = time.perf_counter() - start
        print(f"| {len(analyzed.ifg.real_nodes())} | {one_pass * 1e3:.1f}ms | "
              f"{fixpoint * 1e3:.1f}ms | {fixpoint / one_pass:.1f}x |")
    print()


def pre_table():
    print("## PRE comparison (dynamic evaluations on >=1-trip paths)\n")
    from repro.core.paths import enumerate_paths
    from repro.pre import build_cse_problem, gnt_pre_placement, lazy_code_motion
    from repro.pre.gnt_pre import evaluations_on_path

    wins = ties = losses = 0
    gnt_total = lcm_total = 0
    for seed in range(8):
        analyzed = random_analyzed_program(seed, size=18, goto_probability=0.2)
        problem, _ = build_cse_problem(analyzed)
        stmt_nodes = [n for n in analyzed.ifg.real_nodes()
                      if n.kind.value == "stmt"]
        for node in stmt_nodes[::3]:
            problem.add_take(node, "x + y")
        for node in stmt_nodes[5::7]:
            problem.add_steal(node, "x + y")
        lcm = lazy_code_motion(analyzed.ifg, problem)
        gnt = gnt_pre_placement(analyzed.ifg, problem)
        for path in enumerate_paths(analyzed.ifg, max_paths=30, min_trips=1):
            g = evaluations_on_path(gnt, problem, path, analyzed.ifg)
            l = bin(lcm.insert_edges.get((None, path[0]), 0)).count("1")
            for edge in zip(path, path[1:]):
                l += bin(lcm.insert_edges.get(edge, 0)).count("1")
            for node in path:
                remaining = problem.take_init(node) & ~lcm.delete_nodes.get(node, 0)
                l += bin(remaining).count("1")
            gnt_total += g
            lcm_total += l
            wins += g < l
            ties += g == l
            losses += g > l
    print(f"paths: GNT cheaper {wins}, equal {ties}, costlier {losses}; "
          f"totals GNT={gnt_total} LCM={lcm_total} "
          f"(ratio {gnt_total / lcm_total:.3f})")
    print()


def observability_table(bench_json):
    from repro.obs.bench import solver_scaling, write_bench_json

    print("## Solver observability — BENCH_solver.json\n")
    report = solver_scaling()
    print("| size | nodes | time/node | sweeps | each-equation-once |")
    print("|------|-------|-----------|--------|--------------------|")
    for row in report["rows"]:
        print(f"| {row['size']} | {row['nodes']} | "
              f"{row['time_per_node_s'] * 1e6:.1f}us | "
              f"{row['consumption_sweeps']} | "
              f"{'yes' if row['each_equation_once'] else 'NO'} |")
    print(f"\nlinear within {report['tolerance']:.0f}x tolerance: "
          f"{report['linear_within_tolerance']}")
    if bench_json:
        write_bench_json(bench_json, report)
        print(f"wrote {bench_json}")
    print()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-json", default="BENCH_solver.json",
                        help="where to write the solver-scaling artifact")
    parser.add_argument("--no-bench-json", action="store_true",
                        help="print the table without writing the artifact")
    args = parser.parse_args(argv)
    print("# Reproduction report (regenerated)\n")
    fig2_table()
    fig3_row()
    fig14_row()
    scaling_table()
    pre_table()
    observability_table(None if args.no_bench_json else args.bench_json)


if __name__ == "__main__":
    main()
