"""§1/§6: GIVE-N-TAKE subsumes classical PRE and beats it on zero-trip
loops.

Rows regenerated:

* identical static behavior on ordinary partial redundancies;
* GNT's dynamic evaluation count <= LCM's on every >=1-trip path of
  random programs;
* zero-trip loop invariants: GNT evaluates once per run, classical PRE
  once per iteration;
* solver speed comparison (one-pass elimination vs iterative bitvector).
"""

import pytest

from repro.core.paths import enumerate_paths
from repro.pre import (
    build_cse_problem,
    gnt_pre_placement,
    lazy_code_motion,
    morel_renvoise,
)
from repro.pre.gnt_pre import evaluations_on_path, lazy_insertion_nodes
from repro.testing.generator import random_analyzed_program
from repro.testing.programs import analyze_source


def cse_instance(seed, size=18):
    analyzed = random_analyzed_program(seed, size=size, goto_probability=0.2)
    problem, _ = build_cse_problem(analyzed)
    stmt_nodes = [n for n in analyzed.ifg.real_nodes() if n.kind.value == "stmt"]
    for node in stmt_nodes[::3]:
        problem.add_take(node, "x + y")
    for node in stmt_nodes[5::7]:
        problem.add_steal(node, "x + y")
    return analyzed, problem


def test_bench_gnt_solver(benchmark):
    analyzed, problem = cse_instance(seed=3)
    placement = benchmark(gnt_pre_placement, analyzed.ifg, problem)
    assert placement.productions() is not None


def test_bench_lcm_solver(benchmark):
    analyzed, problem = cse_instance(seed=3)
    result = benchmark(lazy_code_motion, analyzed.ifg, problem)
    assert result.variables


def test_bench_morel_renvoise_solver(benchmark):
    analyzed, problem = cse_instance(seed=3)
    result = benchmark(morel_renvoise, analyzed.ifg, problem)
    assert result.variables


def test_bench_dynamic_cost_vs_lcm(benchmark):
    """Aggregate dynamic cost across random programs with kills.

    GNT wins overall (zero-trip hoisting, give awareness) but is not
    path-wise dominant: its one-pass elimination can pay O1 redundancy
    around loop boundaries that iterative LCM avoids — the paper treats
    the O-criteria as guidelines, and this measures the trade."""

    def compare():
        wins = ties = losses = 0
        gnt_total = lcm_total = 0
        for seed in range(8):
            analyzed, problem = cse_instance(seed)
            lcm = lazy_code_motion(analyzed.ifg, problem)
            gnt = gnt_pre_placement(analyzed.ifg, problem)
            for path in enumerate_paths(analyzed.ifg, max_paths=30,
                                        min_trips=1):
                gnt_cost = evaluations_on_path(gnt, problem, path, analyzed.ifg)
                lcm_cost = _lcm_cost(lcm, problem, path)
                gnt_total += gnt_cost
                lcm_total += lcm_cost
                if gnt_cost < lcm_cost:
                    wins += 1
                elif gnt_cost == lcm_cost:
                    ties += 1
                else:
                    losses += 1
        return wins, ties, losses, gnt_total, lcm_total

    wins, ties, losses, gnt_total, lcm_total = benchmark(compare)
    print(f"\n[pre] paths: GNT cheaper on {wins}, equal {ties}, "
          f"costlier {losses}; totals GNT={gnt_total} LCM={lcm_total} "
          f"(ratio {gnt_total / lcm_total:.3f})")
    assert gnt_total < lcm_total     # aggregate win
    assert wins > losses             # and on the path distribution


def test_bench_zero_trip_loop_headline(benchmark):
    """The crossover case: invariant inside a potentially zero-trip
    loop.  GNT: 1 evaluation per run; LCM: one per iteration."""
    analyzed = analyze_source("do i = 1, n\nu = a + b\nenddo")
    problem, _ = build_cse_problem(analyzed)

    def run_both():
        return (gnt_pre_placement(analyzed.ifg, problem),
                lazy_code_motion(analyzed.ifg, problem))

    gnt, lcm = benchmark(run_both)
    assert lazy_insertion_nodes(gnt, "a + b") == [analyzed.node_named("do i")]
    assert lcm.insertion_count() == 0  # stays inside the loop
    two_trip = max(enumerate_paths(analyzed.ifg, min_trips=1), key=len)
    gnt_cost = evaluations_on_path(gnt, problem, two_trip, analyzed.ifg)
    lcm_cost = _lcm_cost(lcm, problem, two_trip)
    print(f"\n[pre] two-trip path: GNT {gnt_cost} evaluations, LCM {lcm_cost}")
    assert gnt_cost == 1 and lcm_cost == 2


def _lcm_cost(lcm, problem, path):
    cost = bin(lcm.insert_edges.get((None, path[0]), 0)).count("1")
    for edge in zip(path, path[1:]):
        cost += bin(lcm.insert_edges.get(edge, 0)).count("1")
    for node in path:
        remaining = problem.take_init(node) & ~lcm.delete_nodes.get(node, 0)
        cost += bin(remaining).count("1")
    return cost
