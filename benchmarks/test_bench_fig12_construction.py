"""Figures 11/12: interval flow graph construction.

Benchmarks the frontend + graph pipeline on the running example and
asserts the exact Figure 12 structure (14 nodes, edge classification,
Tarjan intervals).
"""

import pytest

from repro.graph.interval_graph import EdgeType
from repro.testing.programs import FIG11_SOURCE, analyze_source


def test_bench_fig12_graph_construction(benchmark):
    analyzed = benchmark(analyze_source, FIG11_SOURCE)
    ifg = analyzed.ifg
    assert len(ifg.real_nodes()) == 14
    assert len(ifg.jump_edges()) == 1
    assert len(ifg.edges("S")) == 1
    by_type = {}
    for _, _, edge_type in ifg.edges("CEFJ"):
        by_type[edge_type] = by_type.get(edge_type, 0) + 1
    # 3 loops + ROOT: 4 entry edges, 4 cycle edges; 1 jump
    assert by_type[EdgeType.ENTRY] == 4
    assert by_type[EdgeType.CYCLE] == 4
    assert by_type[EdgeType.JUMP] == 1
    print(f"\n[fig12] edge counts: "
          f"{ {t.name: c for t, c in sorted(by_type.items(), key=lambda x: x[0].name)} }")


def test_bench_preorder_numbering(benchmark):
    analyzed = analyze_source(FIG11_SOURCE)
    from repro.graph.traversal import preorder_numbering

    numbering = benchmark(preorder_numbering, analyzed.ifg)
    assert sorted(numbering.values()) == list(range(1, 15))


def test_bench_dot_export(benchmark):
    analyzed = analyze_source(FIG11_SOURCE)
    from repro.graph.dot import interval_graph_to_dot

    text = benchmark(interval_graph_to_dot, analyzed.ifg, analyzed.numbering)
    assert 'label="JUMP"' in text
