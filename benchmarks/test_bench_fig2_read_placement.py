"""Figure 1→2: naive vs GIVE-N-TAKE READ placement.

Paper's claim: the naive code generation exchanges N messages with no
latency hiding; GIVE-N-TAKE needs *one* vectorized message and uses the
i loop for latency hiding.
"""

import pytest

from repro import (
    ConditionPolicy,
    MachineModel,
    generate_communication,
    naive_communication,
    simulate,
)
from repro.testing.programs import FIG1_SOURCE

MACHINE = MachineModel(latency=100, time_per_element=1, message_overhead=10)


def run_gnt():
    return generate_communication(FIG1_SOURCE)


def test_bench_gnt_pipeline(benchmark):
    result = benchmark(run_gnt)
    assert "READ_Send{x(a(1:n))}" in result.annotated_source()


@pytest.mark.parametrize("n", [8, 32, 128])
def test_bench_message_counts(benchmark, n):
    gnt = generate_communication(FIG1_SOURCE)
    naive = naive_communication(FIG1_SOURCE)
    policy = ConditionPolicy("always")

    def measure():
        return (
            simulate(gnt.annotated_program, MACHINE, {"n": n}, policy),
            simulate(naive.annotated_program, MACHINE, {"n": n}, policy),
        )

    gnt_metrics, naive_metrics = benchmark(measure)

    # Figure 2's shape: N messages vs exactly 1.
    assert naive_metrics.messages == n
    assert gnt_metrics.messages == 1
    # identical volume (same data moves, fewer envelopes)
    assert naive_metrics.volume == gnt_metrics.volume == n
    # naive exposes the full latency every iteration; GNT hides most of
    # it behind the i loop
    assert naive_metrics.exposed_latency == n * MACHINE.transfer_time(1)
    assert gnt_metrics.hidden_latency > 0
    assert gnt_metrics.total_time < naive_metrics.total_time
    print(f"\n[fig2] n={n}: naive {naive_metrics.summary()}")
    print(f"[fig2] n={n}: gnt   {gnt_metrics.summary()}")
    print(f"[fig2] n={n}: speedup {gnt_metrics.speedup_over(naive_metrics):.1f}x")


def test_bench_latency_hiding_grows_with_n(benchmark):
    gnt = generate_communication(FIG1_SOURCE)

    def sweep():
        hidden = []
        for n in (4, 16, 64):
            metrics = simulate(gnt.annotated_program, MACHINE, {"n": n},
                               ConditionPolicy("always"))
            hidden.append(metrics.hidden_latency)
        return hidden

    hidden = benchmark(sweep)
    # more work before the consumer -> more hidden latency
    assert hidden == sorted(hidden)
