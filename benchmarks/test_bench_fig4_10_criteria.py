"""Figures 4-10: the correctness and optimality criteria.

Each figure contrasts a wrong/suboptimal placement (left) with the one
GIVE-N-TAKE computes (right).  For every criterion we (a) verify the
computed placement satisfies it via the path-replay checker and (b)
verify the checker *rejects* the figure's left-hand placement.
"""

import pytest

from repro.core import Problem, check_placement, solve
from repro.core.placement import Placement, Position
from repro.core.problem import Timing
from repro.testing.programs import analyze_source

DIAMOND_WITH_JOIN = (
    "if t then\na = 1\nelse\nb = 2\nendif\nu = x(1)"
)


def solve_for(source, annotate):
    analyzed = analyze_source(source)
    problem = Problem()
    annotate(analyzed, problem)
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    return analyzed, problem, placement


def test_bench_fig4_balance(benchmark):
    """C1: each EAGER production matched by exactly one LAZY production."""
    analyzed, problem, placement = benchmark(
        solve_for, DIAMOND_WITH_JOIN,
        lambda ap, p: p.add_take(ap.node_named("u ="), "e"),
    )
    report = check_placement(analyzed.ifg, problem, placement)
    assert not report.by_kind("balance")

    # the figure's left side: one eager, two lazies on the same path
    bad = Placement.empty(analyzed.ifg, problem)
    bad.add(analyzed.ifg.cfg.entry, Position.BEFORE, Timing.EAGER, "e")
    bad.add(analyzed.node_named("if t"), Position.BEFORE, Timing.LAZY, "e")
    bad.add(analyzed.node_named("u ="), Position.BEFORE, Timing.LAZY, "e")
    assert check_placement(analyzed.ifg, problem, bad).by_kind("balance")


def test_bench_fig5_safety(benchmark):
    """C2: everything produced is consumed."""
    analyzed, problem, placement = benchmark(
        solve_for,
        "if t then\nu = x(1)\nelse\nb = 2\nendif",
        lambda ap, p: p.add_take(ap.node_named("u ="), "e"),
    )
    report = check_placement(analyzed.ifg, problem, placement)
    assert not report.by_kind("safety")

    # left side: production above the branch leaks onto the else path
    bad = Placement.empty(analyzed.ifg, problem)
    bad.add(analyzed.ifg.cfg.entry, Position.BEFORE, Timing.EAGER, "e")
    bad.add(analyzed.ifg.cfg.entry, Position.BEFORE, Timing.LAZY, "e")
    assert check_placement(analyzed.ifg, problem, bad).by_kind("safety")


def test_bench_fig6_sufficiency(benchmark):
    """C3: a producer on every path reaching each consumer."""
    analyzed, problem, placement = benchmark(
        solve_for, DIAMOND_WITH_JOIN,
        lambda ap, p: p.add_take(ap.node_named("u ="), "e"),
    )
    report = check_placement(analyzed.ifg, problem, placement)
    assert not report.by_kind("sufficiency")

    # left side: production on only one branch
    bad = Placement.empty(analyzed.ifg, problem)
    bad.add(analyzed.node_named("a ="), Position.BEFORE, Timing.EAGER, "e")
    bad.add(analyzed.node_named("a ="), Position.BEFORE, Timing.LAZY, "e")
    assert check_placement(analyzed.ifg, problem, bad).by_kind("sufficiency")


def test_bench_fig7_no_reproduction(benchmark):
    """O1: nothing available is produced again."""
    analyzed, problem, placement = benchmark(
        solve_for, "u = x(1)\nw = x(1)",
        lambda ap, p: (p.add_take(ap.node_named("u ="), "e"),
                       p.add_take(ap.node_named("w ="), "e")),
    )
    report = check_placement(analyzed.ifg, problem, placement)
    assert not report.by_kind("redundant")
    assert placement.production_count(Timing.EAGER) == 1

    bad = Placement.empty(analyzed.ifg, problem)
    for name in ("u =", "w ="):
        bad.add(analyzed.node_named(name), Position.BEFORE, Timing.EAGER, "e")
        bad.add(analyzed.node_named(name), Position.BEFORE, Timing.LAZY, "e")
    assert check_placement(analyzed.ifg, problem, bad).by_kind("redundant")


def test_bench_fig8_few_producers(benchmark):
    """O2: consumers on both branches -> one hoisted producer."""
    analyzed, problem, placement = benchmark(
        solve_for,
        "if t then\nu = x(1)\nelse\nw = x(1)\nendif",
        lambda ap, p: (p.add_take(ap.node_named("u ="), "e"),
                       p.add_take(ap.node_named("w ="), "e")),
    )
    assert placement.production_count(Timing.EAGER) == 1
    # vs the left side's two per-branch producers
    per_branch = Placement.empty(analyzed.ifg, problem)
    for name in ("u =", "w ="):
        per_branch.add(analyzed.node_named(name), Position.BEFORE,
                       Timing.EAGER, "e")
        per_branch.add(analyzed.node_named(name), Position.BEFORE,
                       Timing.LAZY, "e")
    assert per_branch.production_count(Timing.EAGER) == 2


def test_bench_fig9_eager_as_early_as_possible(benchmark):
    """O3: the EAGER production goes to the earliest safe point."""
    analyzed, problem, placement = benchmark(
        solve_for, "a = 1\nb = 2\nu = x(1)",
        lambda ap, p: p.add_take(ap.node_named("u ="), "e"),
    )
    eager = [p for p in placement.productions(Timing.EAGER)]
    assert len(eager) == 1 and eager[0].node is analyzed.ifg.cfg.entry


def test_bench_fig10_lazy_as_late_as_possible(benchmark):
    """O3': the LAZY production goes to the latest point (the consumer)."""
    analyzed, problem, placement = benchmark(
        solve_for, "a = 1\nb = 2\nu = x(1)",
        lambda ap, p: p.add_take(ap.node_named("u ="), "e"),
    )
    lazy = [p for p in placement.productions(Timing.LAZY)]
    assert len(lazy) == 1 and lazy[0].node is analyzed.node_named("u =")
