"""Quantifying the latency-hiding window (the paper's non-atomicity
argument, §1/§6): region lengths under GIVE-N-TAKE vs atomic placement.

Classical PRE places single points — every production region is
degenerate.  GIVE-N-TAKE's split solutions open windows whose length we
measure in work statements across random programs.
"""

import pytest

from repro.core import Problem, solve
from repro.core.placement import Placement, Position
from repro.core.problem import Timing
from repro.core.regions import extract_regions, region_summary
from repro.testing.generator import random_analyzed_program, random_problem
from repro.testing.programs import FIG11_SOURCE, analyze_source
from tests.conftest import make_fig11_read_problem


def test_bench_fig11_window(benchmark):
    analyzed = analyze_source(FIG11_SOURCE)
    problem = make_fig11_read_problem(analyzed)
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)

    regions = benchmark(extract_regions, analyzed.ifg, problem, placement,
                        max_paths=100, min_trips=1)
    count, mean_work, degenerate = region_summary(regions)
    assert mean_work >= 2.0       # the i/j loops sit inside the windows
    # degenerate windows exist only on goto paths, where the jump leads
    # straight to the receive at label 77 (exactly Figure 14's shape)
    assert degenerate < 0.5
    print(f"\n[regions] fig11: {count} regions, mean window "
          f"{mean_work:.1f} statements, {degenerate:.0%} degenerate")


def test_bench_window_distribution_vs_atomic(benchmark):
    def run():
        split_summaries = []
        atomic_summaries = []
        for seed in range(6):
            analyzed = random_analyzed_program(seed, size=16,
                                               goto_probability=0.0)
            problem = random_problem(analyzed, seed=seed + 5, n_elements=3,
                                     steal_probability=0.05)
            if not problem.annotated_nodes():
                continue
            solution = solve(analyzed.ifg, problem)
            placement = Placement(analyzed.ifg, problem, solution)
            split_summaries.append(region_summary(extract_regions(
                analyzed.ifg, problem, placement, max_paths=60, min_trips=1)))

            # atomic placement: both timings at the LAZY sites
            atomic = Placement.empty(analyzed.ifg, problem)
            for production in placement.productions(Timing.LAZY):
                for element in production.elements:
                    atomic.add(production.node, production.position,
                               Timing.EAGER, element)
                    atomic.add(production.node, production.position,
                               Timing.LAZY, element)
            atomic_summaries.append(region_summary(extract_regions(
                analyzed.ifg, problem, atomic, max_paths=60, min_trips=1)))
        return split_summaries, atomic_summaries

    split_summaries, atomic_summaries = benchmark(run)
    split_mean = sum(s[1] for s in split_summaries) / len(split_summaries)
    atomic_mean = sum(s[1] for s in atomic_summaries) / len(atomic_summaries)
    assert atomic_mean == 0.0            # atomic = always degenerate
    assert split_mean > 0.3              # GNT opens real windows on average
    print(f"\n[regions] random programs: GNT mean window {split_mean:.2f} "
          f"statements vs atomic {atomic_mean:.2f}")
